//! Named dense parameter registry.
//!
//! Models declare parameters by name (`"user.feat_proj.w"`); the trainer
//! leafs them onto each example's tape, reads gradients back, and hands them
//! to an optimizer. Keeping parameters outside the tape is what lets the
//! parameter-server simulation in `zoomer-train` shard them by name.

use std::collections::BTreeMap;

use rand::Rng;
use zoomer_tensor::{xavier_matrix, Matrix};

/// A registry of named dense parameters.
///
/// Uses a `BTreeMap` so iteration order (and therefore PS shard assignment
/// and training order) is deterministic.
#[derive(Default)]
pub struct ParamStore {
    params: BTreeMap<String, Matrix>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with an explicit initial value. Panics if the
    /// name is already taken (duplicate registration is a model bug).
    pub fn register(&mut self, name: &str, value: Matrix) {
        let prev = self.params.insert(name.to_string(), value);
        assert!(prev.is_none(), "parameter {name:?} registered twice");
    }

    /// Register a Xavier-initialized `rows×cols` parameter.
    pub fn register_xavier(&mut self, rng: &mut impl Rng, name: &str, rows: usize, cols: usize) {
        self.register(name, xavier_matrix(rng, rows, cols));
    }

    /// Register a zero-initialized parameter (biases).
    pub fn register_zeros(&mut self, name: &str, rows: usize, cols: usize) {
        self.register(name, Matrix::zeros(rows, cols));
    }

    pub fn get(&self, name: &str) -> &Matrix {
        self.params.get(name).unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    pub fn get_mut(&mut self, name: &str) -> &mut Matrix {
        self.params.get_mut(name).unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.params.contains_key(name)
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Deterministic iteration over `(name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.params.keys().map(String::as_str)
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.values().map(Matrix::len).sum()
    }

    /// Overwrite a parameter's value in place (same shape required).
    pub fn set(&mut self, name: &str, value: Matrix) {
        let slot = self.get_mut(name);
        assert_eq!(slot.shape(), value.shape(), "set {name:?}: shape mismatch");
        *slot = value;
    }

    /// Deep copy of the whole store (used by the PS simulation for replicas
    /// and by tests for before/after comparisons).
    pub fn snapshot(&self) -> Self {
        Self { params: self.params.clone() }
    }

    /// Maximum absolute difference against another store with identical keys.
    pub fn max_abs_diff(&self, other: &ParamStore) -> f32 {
        assert_eq!(self.len(), other.len(), "max_abs_diff: param count mismatch");
        self.params.iter().map(|(k, v)| v.max_abs_diff(other.get(k))).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_tensor::seeded_rng;

    #[test]
    fn register_and_get() {
        let mut p = ParamStore::new();
        p.register_zeros("w", 2, 3);
        assert_eq!(p.get("w").shape(), (2, 3));
        assert_eq!(p.len(), 1);
        assert_eq!(p.num_scalars(), 6);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut p = ParamStore::new();
        p.register_zeros("w", 1, 1);
        p.register_zeros("w", 1, 1);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_get_panics() {
        let p = ParamStore::new();
        let _ = p.get("nope");
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let mut p = ParamStore::new();
        p.register_zeros("zz", 1, 1);
        p.register_zeros("aa", 1, 1);
        p.register_zeros("mm", 1, 1);
        let names: Vec<&str> = p.names().collect();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut rng = seeded_rng(5);
        let mut p = ParamStore::new();
        p.register_xavier(&mut rng, "w", 2, 2);
        let snap = p.snapshot();
        p.get_mut("w").set(0, 0, 99.0);
        assert_ne!(snap.get("w").get(0, 0), 99.0);
        assert!(p.max_abs_diff(&snap) > 1.0);
    }

    #[test]
    fn set_requires_same_shape() {
        let mut p = ParamStore::new();
        p.register_zeros("w", 2, 2);
        p.set("w", Matrix::full(2, 2, 1.0));
        assert_eq!(p.get("w").get(1, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_wrong_shape_panics() {
        let mut p = ParamStore::new();
        p.register_zeros("w", 2, 2);
        p.set("w", Matrix::zeros(1, 4));
    }
}
