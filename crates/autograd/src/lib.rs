//! Tape-based reverse-mode automatic differentiation for the Zoomer models.
//!
//! The paper's production system trains on TensorFlow 1.12; this crate is the
//! from-scratch Rust equivalent sized to the needs of the Zoomer model family:
//! a [`Tape`] of matrix-valued nodes, ~20 differentiable operators (including
//! the attention-specific ones: row-wise softmax, row scaling, cosine
//! similarity, focal cross-entropy on logits), optimizers ([`Adam`], [`Sgd`],
//! [`Adagrad`]) with decoupled weight decay, a named dense parameter registry
//! ([`ParamStore`]), and [`EmbeddingTable`]s with lazy (sparse) Adam updates —
//! mirroring XDL's sparse-parameter handling.
//!
//! Every operator's backward pass is validated against central finite
//! differences (see [`gradcheck`]).

pub mod embedding;
pub mod gradcheck;
pub mod optim;
pub mod params;
pub mod tape;

pub use embedding::EmbeddingTable;
pub use gradcheck::{check_gradients, GradCheckReport};
pub use optim::{Adagrad, Adam, Optimizer, Sgd};
pub use params::ParamStore;
pub use tape::{Gradients, Tape, Var};
