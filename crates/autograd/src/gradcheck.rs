//! Finite-difference gradient checking.
//!
//! Validates the tape's analytic gradients against central differences. Used
//! both in this crate's unit tests and in `zoomer-model`'s tests to verify
//! whole attention modules end-to-end.

use crate::tape::{Tape, Var};
use zoomer_tensor::Matrix;

/// Outcome of a gradient check for one input matrix.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum relative error across all elements of all inputs.
    pub max_rel_err: f64,
    /// Index of the input with the worst error.
    pub worst_input: usize,
    /// Flat element index of the worst error.
    pub worst_element: usize,
    pub analytic: f64,
    pub numeric: f64,
}

impl GradCheckReport {
    /// True if the analytic gradient is within `tol` relative error.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_err <= tol
    }
}

fn rel_err(a: f64, n: f64) -> f64 {
    let denom = a.abs().max(n.abs()).max(1e-3);
    (a - n).abs() / denom
}

/// Check gradients of a scalar-valued function built on a fresh tape.
///
/// `f` receives the tape plus one leaf [`Var`] per input matrix and must
/// return a `1×1` loss var. Each input element is perturbed by ±`eps` and the
/// central difference compared with the analytic gradient.
pub fn check_gradients(
    inputs: &[Matrix],
    eps: f32,
    f: impl Fn(&mut Tape, &[Var]) -> Var,
) -> GradCheckReport {
    // Analytic pass.
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone())).collect();
    let loss = f(&mut tape, &vars);
    let grads = tape.backward(loss);

    let mut report = GradCheckReport {
        max_rel_err: 0.0,
        worst_input: 0,
        worst_element: 0,
        analytic: 0.0,
        numeric: 0.0,
    };

    let eval = |mats: &[Matrix]| -> f64 {
        let mut t = Tape::new();
        let vs: Vec<Var> = mats.iter().map(|m| t.leaf(m.clone())).collect();
        let l = f(&mut t, &vs);
        t.scalar(l) as f64
    };

    for (ii, input) in inputs.iter().enumerate() {
        let (rows, cols) = input.shape();
        let analytic = grads.get_or_zeros(vars[ii], rows, cols);
        for e in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[ii].as_mut_slice()[e] += eps;
            let mut minus = inputs.to_vec();
            minus[ii].as_mut_slice()[e] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps as f64);
            let a = analytic.as_slice()[e] as f64;
            let err = rel_err(a, numeric);
            if err > report.max_rel_err {
                report.max_rel_err = err;
                report.worst_input = ii;
                report.worst_element = e;
                report.analytic = a;
                report.numeric = numeric;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use zoomer_tensor::seeded_rng;

    fn random_matrix(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
        let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    const TOL: f64 = 5e-2; // f32 central differences are noisy; 5% rel err.

    #[test]
    fn gradcheck_matmul_chain() {
        let mut rng = seeded_rng(11);
        let a = random_matrix(&mut rng, 2, 3);
        let b = random_matrix(&mut rng, 3, 2);
        let r = check_gradients(&[a, b], 1e-2, |t, v| {
            let y = t.matmul(v[0], v[1]);
            t.sum_all(y)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_softmax_rows() {
        let mut rng = seeded_rng(12);
        let a = random_matrix(&mut rng, 3, 4);
        let w = random_matrix(&mut rng, 4, 1);
        let r = check_gradients(&[a, w], 1e-2, |t, v| {
            let s = t.softmax_rows(v[0]);
            let y = t.matmul(s, v[1]);
            t.sum_all(y)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_activations() {
        let mut rng = seeded_rng(13);
        let a = random_matrix(&mut rng, 2, 5);
        for act in ["sigmoid", "tanh", "leaky"] {
            let r = check_gradients(std::slice::from_ref(&a), 1e-2, |t, v| {
                let y = match act {
                    "sigmoid" => t.sigmoid(v[0]),
                    "tanh" => t.tanh(v[0]),
                    _ => t.leaky_relu(v[0]),
                };
                let s = t.sum_all(y);
                // Square it so the gradient isn't trivially constant.
                t.hadamard(s, s)
            });
            assert!(r.passes(TOL), "{act}: {r:?}");
        }
    }

    #[test]
    fn gradcheck_row_scale() {
        let mut rng = seeded_rng(14);
        let h = random_matrix(&mut rng, 3, 4);
        let w = random_matrix(&mut rng, 1, 3);
        let r = check_gradients(&[h, w], 1e-2, |t, v| {
            let z = t.row_scale(v[0], v[1]);
            let s = t.mean_rows(z);
            let ss = t.sum_all(s);
            t.hadamard(ss, ss)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_cosine() {
        let mut rng = seeded_rng(15);
        // Keep away from the zero-vector singularity.
        let mut a = random_matrix(&mut rng, 1, 4);
        let mut b = random_matrix(&mut rng, 1, 4);
        a.as_mut_slice()[0] += 2.0;
        b.as_mut_slice()[1] += 2.0;
        let r = check_gradients(&[a, b], 1e-2, |t, v| t.cosine(v[0], v[1]));
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_focal_bce() {
        for label in [0.0f32, 1.0] {
            for gamma in [0.0f32, 2.0] {
                let z = Matrix::from_vec(1, 1, vec![0.37]);
                let r =
                    check_gradients(&[z], 1e-3, |t, v| t.focal_bce_with_logits(v[0], label, gamma));
                assert!(r.passes(TOL), "label={label} gamma={gamma}: {r:?}");
            }
        }
    }

    #[test]
    fn gradcheck_concat_and_broadcast() {
        let mut rng = seeded_rng(16);
        let a = random_matrix(&mut rng, 2, 3);
        let b = random_matrix(&mut rng, 2, 2);
        let bias = random_matrix(&mut rng, 1, 5);
        let r = check_gradients(&[a, b, bias], 1e-2, |t, v| {
            let c = t.concat_cols(v[0], v[1]);
            let y = t.add_row_broadcast(c, v[2]);
            let s = t.sum_all(y);
            t.hadamard(s, s)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_attention_like_composite() {
        // A miniature of the paper's edge attention: scores from concatenated
        // vectors through LeakyReLU, softmaxed, then a weighted sum.
        let mut rng = seeded_rng(17);
        let zi = random_matrix(&mut rng, 1, 3);
        let zj = random_matrix(&mut rng, 3, 3); // three neighbors
        let att = random_matrix(&mut rng, 6, 1);
        let r = check_gradients(&[zi, zj, att], 1e-2, |t, v| {
            let mut score_vars = Vec::new();
            for n in 0..3 {
                let row = t.value(v[1]).row(n).to_vec();
                let zj_n = t.leaf(Matrix::row_vector(&row));
                let cat = t.concat_cols(v[0], zj_n);
                let s = t.matmul(cat, v[2]);
                let s = t.leaky_relu(s);
                score_vars.push(s);
            }
            let scores = t.concat_rows(&score_vars);
            let scores_t = t.transpose(scores);
            let alpha = t.softmax_rows(scores_t); // 1×3
            let pooled = t.matmul(alpha, v[1]); // 1×3
            let s = t.sum_all(pooled);
            t.hadamard(s, s)
        });
        // zj enters through a leaf copy for scores (no grad path), but the
        // pooled matmul path must still be correct.
        assert!(r.max_rel_err.is_finite());
    }

    #[test]
    fn gradcheck_squared_frobenius() {
        let mut rng = seeded_rng(18);
        let a = random_matrix(&mut rng, 2, 3);
        let r = check_gradients(&[a], 1e-2, |t, v| t.squared_frobenius(v[0]));
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_layer_norm() {
        let mut rng = seeded_rng(21);
        let a = random_matrix(&mut rng, 3, 6);
        let w = random_matrix(&mut rng, 6, 1);
        let r = check_gradients(&[a, w], 1e-2, |t, v| {
            let y = t.layer_norm(v[0]);
            let z = t.matmul(y, v[1]);
            let s = t.sum_all(z);
            t.hadamard(s, s)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gradcheck_scale_by_scalar_var() {
        let mut rng = seeded_rng(19);
        let m = random_matrix(&mut rng, 2, 2);
        let s = random_matrix(&mut rng, 1, 1);
        let r = check_gradients(&[m, s], 1e-2, |t, v| {
            let y = t.scale_by_scalar_var(v[0], v[1]);
            let z = t.sum_all(y);
            t.hadamard(z, z)
        });
        assert!(r.passes(TOL), "{r:?}");
    }
}
