//! Optimizers: SGD, Adagrad, and Adam with decoupled weight decay.
//!
//! The paper trains "with SGD, using the Adam optimizer" (§VII-A) and a
//! regularization-loss weight; we implement both plus Adagrad (XDL's usual
//! choice for sparse embeddings) and expose decoupled weight decay so the
//! "regulation loss weight" of the paper maps onto an L2 penalty without
//! polluting the Adam moment estimates.

use std::collections::BTreeMap;

use crate::params::ParamStore;
use zoomer_tensor::Matrix;

/// Common optimizer interface over named dense parameters.
pub trait Optimizer {
    /// Apply one gradient step to parameter `name`.
    fn step(&mut self, params: &mut ParamStore, name: &str, grad: &Matrix);

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;
}

/// Plain SGD with optional decoupled weight decay.
pub struct Sgd {
    pub lr: f32,
    pub weight_decay: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr, weight_decay: 0.0 }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, name: &str, grad: &Matrix) {
        let p = params.get_mut(name);
        assert_eq!(p.shape(), grad.shape(), "Sgd::step {name:?}: shape mismatch");
        if self.weight_decay > 0.0 {
            let decay = self.lr * self.weight_decay;
            p.map_inplace(|x| x - decay * x);
        }
        p.axpy(-self.lr, grad);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adagrad with per-element accumulated squared gradients.
pub struct Adagrad {
    pub lr: f32,
    pub eps: f32,
    accum: BTreeMap<String, Matrix>,
}

impl Adagrad {
    pub fn new(lr: f32) -> Self {
        Self { lr, eps: 1e-8, accum: BTreeMap::new() }
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, params: &mut ParamStore, name: &str, grad: &Matrix) {
        let p = params.get_mut(name);
        assert_eq!(p.shape(), grad.shape(), "Adagrad::step {name:?}: shape mismatch");
        let acc = self
            .accum
            .entry(name.to_string())
            .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
        for ((pv, &g), a) in
            p.as_mut_slice().iter_mut().zip(grad.as_slice()).zip(acc.as_mut_slice())
        {
            *a += g * g;
            *pv -= self.lr * g / (a.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with decoupled weight decay (AdamW-style).
///
/// Moment state is kept per parameter name with a per-name step counter, so
/// parameters that only appear in some minibatches (e.g. per-node-type
/// towers) get correct bias correction.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    state: BTreeMap<String, AdamState>,
}

struct AdamState {
    m: Matrix,
    v: Matrix,
    t: u32,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, state: BTreeMap::new() }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of updates applied to parameter `name` so far.
    pub fn steps_for(&self, name: &str) -> u32 {
        self.state.get(name).map_or(0, |s| s.t)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, name: &str, grad: &Matrix) {
        let p = params.get_mut(name);
        assert_eq!(p.shape(), grad.shape(), "Adam::step {name:?}: shape mismatch");
        let st = self.state.entry(name.to_string()).or_insert_with(|| AdamState {
            m: Matrix::zeros(grad.rows(), grad.cols()),
            v: Matrix::zeros(grad.rows(), grad.cols()),
            t: 0,
        });
        st.t += 1;
        let b1t = 1.0 - self.beta1.powi(st.t as i32);
        let b2t = 1.0 - self.beta2.powi(st.t as i32);
        if self.weight_decay > 0.0 {
            let decay = self.lr * self.weight_decay;
            p.map_inplace(|x| x - decay * x);
        }
        for (((pv, &g), m), v) in p
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(st.m.as_mut_slice())
            .zip(st.v.as_mut_slice())
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mh = *m / b1t;
            let vh = *v / b2t;
            *pv -= self.lr * mh / (vh.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Matrix) -> Matrix {
        // f(x) = ½‖x − 3‖² → ∇f = x − 3.
        p.map(|x| x - 3.0)
    }

    fn converges<O: Optimizer>(mut opt: O, iters: usize) -> f32 {
        let mut params = ParamStore::new();
        params.register("x", Matrix::full(2, 2, 10.0));
        for _ in 0..iters {
            let g = quadratic_grad(params.get("x"));
            opt.step(&mut params, "x", &g);
        }
        params.get("x").map(|x| (x - 3.0).abs()).sum()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(converges(Sgd::new(0.1), 200) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(converges(Adam::new(0.2), 400) < 1e-2);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        assert!(converges(Adagrad::new(1.0), 500) < 1e-2);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // Bias correction means the very first Adam step ≈ lr · sign(g).
        let mut params = ParamStore::new();
        params.register("x", Matrix::full(1, 1, 0.0));
        let mut adam = Adam::new(0.1);
        adam.step(&mut params, "x", &Matrix::full(1, 1, 5.0));
        let x = params.get("x").get(0, 0);
        assert!((x + 0.1).abs() < 1e-3, "first step should be ≈ −lr, got {x}");
    }

    #[test]
    fn weight_decay_shrinks_params_without_grad_signal() {
        let mut params = ParamStore::new();
        params.register("x", Matrix::full(1, 1, 1.0));
        let mut sgd = Sgd::new(0.1).with_weight_decay(0.5);
        for _ in 0..10 {
            sgd.step(&mut params, "x", &Matrix::zeros(1, 1));
        }
        let x = params.get("x").get(0, 0);
        assert!(x < 0.7 && x > 0.0, "decayed to {x}");
    }

    #[test]
    fn adam_per_name_step_counters() {
        let mut params = ParamStore::new();
        params.register("a", Matrix::zeros(1, 1));
        params.register("b", Matrix::zeros(1, 1));
        let mut adam = Adam::new(0.1);
        adam.step(&mut params, "a", &Matrix::full(1, 1, 1.0));
        adam.step(&mut params, "a", &Matrix::full(1, 1, 1.0));
        adam.step(&mut params, "b", &Matrix::full(1, 1, 1.0));
        assert_eq!(adam.steps_for("a"), 2);
        assert_eq!(adam.steps_for("b"), 1);
        assert_eq!(adam.steps_for("never"), 0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn step_shape_mismatch_panics() {
        let mut params = ParamStore::new();
        params.register("x", Matrix::zeros(2, 2));
        let mut sgd = Sgd::new(0.1);
        sgd.step(&mut params, "x", &Matrix::zeros(1, 1));
    }
}
