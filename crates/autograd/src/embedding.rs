//! Sparse embedding tables with lazy Adam updates.
//!
//! The paper's XDL substrate stores embedding tables on parameter servers and
//! updates them sparsely (only the rows touched by a minibatch). This module
//! reproduces that: an [`EmbeddingTable`] maps a `u64` id to a `dim`-wide row;
//! lookups hand rows to the tape as leaves; [`EmbeddingTable::apply_sparse`]
//! applies a lazy Adam step to only the touched rows, keeping per-row moment
//! state allocated on first touch.

use std::collections::HashMap;

use rand::Rng;
use zoomer_tensor::Matrix;

/// Hyperparameters for the lazy Adam used on embedding rows.
#[derive(Clone, Copy, Debug)]
pub struct SparseAdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled L2 decay applied to touched rows.
    pub weight_decay: f32,
}

impl Default for SparseAdamConfig {
    fn default() -> Self {
        Self { lr: 0.01, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

struct RowState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

/// An id → dense-vector embedding table with sparse optimizer state.
///
/// Rows are initialized lazily on first lookup from a scaled uniform
/// distribution (so unseen ids during evaluation get a stable, deterministic
/// vector derived from the table's RNG stream in lookup order).
pub struct EmbeddingTable {
    name: String,
    dim: usize,
    init_scale: f32,
    rows: HashMap<u64, Vec<f32>>,
    state: HashMap<u64, RowState>,
    config: SparseAdamConfig,
    // Deterministic per-id init: splitmix on (seed, id).
    seed: u64,
}

impl EmbeddingTable {
    /// Create a table producing `dim`-dimensional embeddings.
    pub fn new(name: &str, dim: usize, seed: u64, config: SparseAdamConfig) -> Self {
        assert!(dim > 0, "embedding dim must be positive");
        Self {
            name: name.to_string(),
            dim,
            init_scale: (1.0 / dim as f32).sqrt(),
            rows: HashMap::new(),
            state: HashMap::new(),
            config,
            seed,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of materialized rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn init_row(&self, id: u64) -> Vec<f32> {
        // SplitMix64 stream keyed by (table seed, id): deterministic and
        // independent of lookup order.
        let mut x = self.seed ^ id.wrapping_mul(0x9E3779B97F4A7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        (0..self.dim)
            .map(|_| {
                let u = (next() >> 40) as f32 / (1u64 << 24) as f32; // [0,1)
                (u * 2.0 - 1.0) * self.init_scale
            })
            .collect()
    }

    /// Look up (materializing if needed) the embedding row for `id`.
    pub fn lookup(&mut self, id: u64) -> &[f32] {
        if !self.rows.contains_key(&id) {
            let row = self.init_row(id);
            self.rows.insert(id, row);
        }
        self.rows.get(&id).expect("just inserted")
    }

    /// Lookup as a `1×dim` matrix (convenient for tape leaves).
    pub fn lookup_matrix(&mut self, id: u64) -> Matrix {
        Matrix::row_vector(self.lookup(id))
    }

    /// Read-only lookup that does not materialize missing rows; returns the
    /// deterministic init value for unseen ids (serving-path behaviour).
    pub fn peek(&self, id: u64) -> Vec<f32> {
        self.rows.get(&id).cloned().unwrap_or_else(|| self.init_row(id))
    }

    /// Apply a lazy Adam step to the touched rows.
    ///
    /// `grads` maps id → gradient of the loss w.r.t. that row. Multiple
    /// gradients for the same id must be pre-summed by the caller (the
    /// trainer does this when an id appears several times in one subgraph).
    pub fn apply_sparse(&mut self, grads: &HashMap<u64, Vec<f32>>) {
        let cfg = self.config;
        for (&id, g) in grads {
            assert_eq!(g.len(), self.dim, "gradient width mismatch for {}", self.name);
            // Ensure the row exists (it should: it was looked up in forward).
            if !self.rows.contains_key(&id) {
                let row = self.init_row(id);
                self.rows.insert(id, row);
            }
            let row = self.rows.get_mut(&id).expect("row exists");
            let st = self.state.entry(id).or_insert_with(|| RowState {
                m: vec![0.0; g.len()],
                v: vec![0.0; g.len()],
                t: 0,
            });
            st.t += 1;
            let b1t = 1.0 - cfg.beta1.powi(st.t as i32);
            let b2t = 1.0 - cfg.beta2.powi(st.t as i32);
            for (((w, &gg), m), v) in
                row.iter_mut().zip(g.iter()).zip(st.m.iter_mut()).zip(st.v.iter_mut())
            {
                if cfg.weight_decay > 0.0 {
                    *w -= cfg.lr * cfg.weight_decay * *w;
                }
                *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * gg;
                *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * gg * gg;
                let mh = *m / b1t;
                let vh = *v / b2t;
                *w -= cfg.lr * mh / (vh.sqrt() + cfg.eps);
            }
        }
    }

    /// Overwrite a row (used when loading trained embeddings for serving).
    pub fn set_row(&mut self, id: u64, row: Vec<f32>) {
        assert_eq!(row.len(), self.dim, "set_row width mismatch");
        self.rows.insert(id, row);
    }

    /// Iterate over materialized `(id, row)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f32])> {
        self.rows.iter().map(|(&id, r)| (id, r.as_slice()))
    }

    /// Export all materialized rows sorted by id (for the ANN index build).
    pub fn export_sorted(&self) -> Vec<(u64, Vec<f32>)> {
        let mut out: Vec<(u64, Vec<f32>)> =
            self.rows.iter().map(|(&id, r)| (id, r.clone())).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Fill rows for many ids at once from an RNG (test/bench setup helper).
    pub fn randomize(&mut self, rng: &mut impl Rng, ids: impl Iterator<Item = u64>) {
        for id in ids {
            let row: Vec<f32> =
                (0..self.dim).map(|_| rng.gen_range(-self.init_scale..=self.init_scale)).collect();
            self.rows.insert(id, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EmbeddingTable {
        EmbeddingTable::new("test", 8, 42, SparseAdamConfig::default())
    }

    #[test]
    fn lookup_is_deterministic_per_id() {
        let mut t1 = table();
        let mut t2 = table();
        // Different lookup orders must give the same vectors.
        let a1 = t1.lookup(5).to_vec();
        let _ = t1.lookup(9);
        let _ = t2.lookup(9);
        let a2 = t2.lookup(5).to_vec();
        assert_eq!(a1, a2);
    }

    #[test]
    fn different_ids_get_different_rows() {
        let mut t = table();
        let a = t.lookup(1).to_vec();
        let b = t.lookup(2).to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn peek_does_not_materialize() {
        let t = table();
        let v = t.peek(77);
        assert_eq!(v.len(), 8);
        assert_eq!(t.len(), 0);
        // And matches what lookup would produce.
        let mut t2 = table();
        assert_eq!(v, t2.lookup(77).to_vec());
    }

    #[test]
    fn sparse_update_moves_against_gradient() {
        let mut t = table();
        let before = t.lookup(3).to_vec();
        let mut grads = HashMap::new();
        grads.insert(3u64, vec![1.0; 8]);
        t.apply_sparse(&grads);
        let after = t.lookup(3).to_vec();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!(a < b, "row should move down the gradient");
        }
    }

    #[test]
    fn sparse_update_leaves_other_rows_untouched() {
        let mut t = table();
        let other = t.lookup(10).to_vec();
        let mut grads = HashMap::new();
        grads.insert(3u64, vec![1.0; 8]);
        t.apply_sparse(&grads);
        assert_eq!(t.lookup(10).to_vec(), other);
    }

    #[test]
    fn repeated_updates_converge_toward_target() {
        // Minimize ½‖e − target‖² over the row: grad = e − target.
        let mut t =
            EmbeddingTable::new("conv", 4, 7, SparseAdamConfig { lr: 0.05, ..Default::default() });
        let target = [0.5f32, -0.5, 0.25, 0.0];
        for _ in 0..500 {
            let row = t.lookup(1).to_vec();
            let g: Vec<f32> = row.iter().zip(target.iter()).map(|(&e, &tg)| e - tg).collect();
            let mut grads = HashMap::new();
            grads.insert(1u64, g);
            t.apply_sparse(&grads);
        }
        for (e, tg) in t.lookup(1).iter().zip(target.iter()) {
            assert!((e - tg).abs() < 0.02, "{e} vs {tg}");
        }
    }

    #[test]
    fn export_sorted_is_sorted() {
        let mut t = table();
        for id in [9u64, 1, 5, 3] {
            let _ = t.lookup(id);
        }
        let rows = t.export_sorted();
        let ids: Vec<u64> = rows.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_grad_width_panics() {
        let mut t = table();
        let _ = t.lookup(1);
        let mut grads = HashMap::new();
        grads.insert(1u64, vec![0.0; 3]);
        t.apply_sparse(&grads);
    }
}
