//! The autodiff tape: matrix-valued nodes, forward operators, and the reverse
//! sweep.
//!
//! A [`Tape`] owns a flat arena of nodes; a [`Var`] is an index into it.
//! Operators append a node recording their inputs; [`Tape::backward`] walks
//! the arena in reverse, accumulating gradients. The tape is rebuilt for every
//! training example (define-by-run), which matches the per-request subgraph
//! structure of Zoomer: every request has its own ROI, so the compute graph
//! genuinely differs between examples.

use zoomer_tensor::numerics::{leaky_relu, leaky_relu_grad, sigmoid};
use zoomer_tensor::{l2_norm, Matrix};

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Raw arena index (used by gradient bookkeeping).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Operator record for the backward pass.
#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Hadamard(Var, Var),
    /// `(n×d) + broadcast of (1×d)` row vector.
    AddRowBroadcast(Var, Var),
    /// Fused dense layer `x·W + b` (bias broadcast down the rows): one
    /// kernel pass and one tape node instead of a matmul node followed by
    /// a broadcast-add node.
    Linear {
        x: Var,
        w: Var,
        b: Var,
    },
    /// Multiply by a compile-time constant.
    Scale(Var, f32),
    /// `[a | b]` column-wise concatenation.
    ConcatCols(Var, Var),
    /// Stack many rows (each input is `1×d`).
    ConcatRows(Vec<Var>),
    /// Mean over rows: `n×d → 1×d`.
    MeanRows(Var),
    /// Sum over rows: `n×d → 1×d`.
    SumRows(Var),
    Transpose(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    LeakyRelu(Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    /// Scale row `i` of `h` (`n×d`) by `w[i]` (`1×n`).
    RowScale {
        h: Var,
        w: Var,
    },
    /// Cosine similarity of two `1×d` vectors → `1×1`.
    Cosine(Var, Var),
    /// Multiply every element of `m` by the scalar var `s` (`1×1`).
    ScaleByScalarVar {
        m: Var,
        s: Var,
    },
    /// Sum of all elements → `1×1`.
    SumAll(Var),
    /// Mean of all elements → `1×1`.
    MeanAll(Var),
    /// Focal binary cross entropy on a logit (`1×1`), label & gamma baked in.
    FocalBceWithLogits {
        logit: Var,
        label: f32,
        gamma: f32,
    },
    /// Squared Frobenius norm → `1×1` (for explicit L2 regularization terms).
    SquaredFrobenius(Var),
    /// Elementwise mask-and-scale (inverted dropout); mask baked at forward.
    Dropout {
        input: Var,
        mask: Matrix,
    },
    /// Per-row layer normalization (no affine), epsilon baked in.
    LayerNorm {
        input: Var,
        eps: f32,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. `v`, if `v` influenced the loss.
    pub fn get(&self, v: Var) -> Option<&Matrix> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Gradient of the loss w.r.t. `v`, or a zero matrix of the given shape.
    pub fn get_or_zeros(&self, v: Var, rows: usize, cols: usize) -> Matrix {
        self.get(v).cloned().unwrap_or_else(|| Matrix::zeros(rows, cols))
    }
}

/// Define-by-run autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Self { nodes: Vec::with_capacity(256) }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a var.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Scalar value of a `1×1` var.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() on non-1x1 var");
        m.get(0, 0)
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        debug_assert!(!value.has_non_finite(), "non-finite forward value from {op:?}");
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Record an input (leaf) node. Leaves receive gradients but have no
    /// parents.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Convenience: a `1×1` scalar leaf.
    pub fn scalar_leaf(&mut self, value: f32) -> Var {
        self.leaf(Matrix::from_vec(1, 1, vec![value]))
    }

    // ---- operators -------------------------------------------------------

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a) + self.value(b);
        self.push(v, Op::Add(a, b))
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a) - self.value(b);
        self.push(v, Op::Sub(a, b))
    }

    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Hadamard(a, b))
    }

    /// `(n×d) + (1×d)` with the row vector broadcast down the rows.
    pub fn add_row_broadcast(&mut self, m: Var, row: Var) -> Var {
        let (n, d) = self.value(m).shape();
        let rv = self.value(row);
        assert_eq!(rv.shape(), (1, d), "add_row_broadcast: bias must be 1x{d}");
        let mut out = self.value(m).clone();
        for r in 0..n {
            let dst = out.row_mut(r);
            for (o, &b) in dst.iter_mut().zip(rv.row(0)) {
                *o += b;
            }
        }
        self.push(out, Op::AddRowBroadcast(m, row))
    }

    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).scale(c);
        self.push(v, Op::Scale(a, c))
    }

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hcat(self.value(b));
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Stack `1×d` vars into an `n×d` matrix.
    pub fn concat_rows(&mut self, rows: &[Var]) -> Var {
        assert!(!rows.is_empty(), "concat_rows: empty input");
        let d = self.value(rows[0]).cols();
        let mut out = Matrix::zeros(rows.len(), d);
        for (i, &r) in rows.iter().enumerate() {
            let v = self.value(r);
            assert_eq!(v.shape(), (1, d), "concat_rows: all inputs must be 1x{d}");
            out.set_row(i, v.row(0));
        }
        self.push(out, Op::ConcatRows(rows.to_vec()))
    }

    pub fn mean_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).mean_rows();
        self.push(v, Op::MeanRows(a))
    }

    pub fn sum_rows(&mut self, a: Var) -> Var {
        let src = self.value(a);
        let mut out = Matrix::zeros(1, src.cols());
        for r in 0..src.rows() {
            for (o, &x) in out.as_mut_slice().iter_mut().zip(src.row(r)) {
                *o += x;
            }
        }
        self.push(out, Op::SumRows(a))
    }

    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(v, Op::Transpose(a))
    }

    /// Row-wise stable softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let mut v = self.value(a).clone();
        for r in 0..v.rows() {
            zoomer_tensor::softmax_inplace(v.row_mut(r));
        }
        self.push(v, Op::SoftmaxRows(a))
    }

    pub fn leaky_relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(leaky_relu);
        self.push(v, Op::LeakyRelu(a))
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Scale row `i` of `h` (`n×d`) by weight `w[i]` (`1×n`) — the paper's
    /// eq. (7) feature-projection multiply.
    pub fn row_scale(&mut self, h: Var, w: Var) -> Var {
        let hv = self.value(h);
        let wv = self.value(w);
        let (n, d) = hv.shape();
        assert_eq!(wv.shape(), (1, n), "row_scale: weights must be 1x{n}");
        let mut out = Matrix::zeros(n, d);
        for r in 0..n {
            let s = wv.get(0, r);
            for (o, &x) in out.row_mut(r).iter_mut().zip(hv.row(r)) {
                *o = s * x;
            }
        }
        self.push(out, Op::RowScale { h, w })
    }

    /// Cosine similarity of two `1×d` vectors → `1×1` (paper eq. (10)).
    ///
    /// Defined as 0 with zero gradient if either vector is (numerically)
    /// all-zero.
    pub fn cosine(&mut self, a: Var, b: Var) -> Var {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.rows(), 1, "cosine: a must be a row vector");
        assert_eq!(bv.rows(), 1, "cosine: b must be a row vector");
        assert_eq!(av.cols(), bv.cols(), "cosine: dim mismatch");
        let c = zoomer_tensor::cosine_similarity(av.row(0), bv.row(0));
        self.push(Matrix::from_vec(1, 1, vec![c]), Op::Cosine(a, b))
    }

    /// Multiply matrix `m` elementwise by a scalar-valued var `s` (`1×1`).
    pub fn scale_by_scalar_var(&mut self, m: Var, s: Var) -> Var {
        assert_eq!(self.value(s).shape(), (1, 1), "scale_by_scalar_var: s must be 1x1");
        let sv = self.value(s).get(0, 0);
        let out = self.value(m).scale(sv);
        self.push(out, Op::ScaleByScalarVar { m, s })
    }

    pub fn sum_all(&mut self, a: Var) -> Var {
        let s = self.value(a).sum();
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::SumAll(a))
    }

    pub fn mean_all(&mut self, a: Var) -> Var {
        let s = self.value(a).mean();
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::MeanAll(a))
    }

    /// Focal binary cross-entropy on a raw logit. `gamma = 0` reduces to
    /// ordinary BCE-with-logits. Label must be 0.0 or 1.0.
    pub fn focal_bce_with_logits(&mut self, logit: Var, label: f32, gamma: f32) -> Var {
        assert_eq!(self.value(logit).shape(), (1, 1), "focal_bce: logit must be 1x1");
        assert!(label == 0.0 || label == 1.0, "focal_bce: label must be 0/1");
        let z = self.value(logit).get(0, 0);
        let p = sigmoid(z);
        let loss = zoomer_tensor::numerics::focal_cross_entropy(p, label, gamma);
        self.push(
            Matrix::from_vec(1, 1, vec![loss]),
            Op::FocalBceWithLogits { logit, label, gamma },
        )
    }

    /// Squared Frobenius norm → `1×1`, for explicit regularization terms.
    pub fn squared_frobenius(&mut self, a: Var) -> Var {
        let s: f32 = self.value(a).as_slice().iter().map(|&x| x * x).sum();
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::SquaredFrobenius(a))
    }

    /// Inverted dropout: zero each element with probability `p` and scale
    /// survivors by `1/(1−p)`, so the expected activation is unchanged.
    /// The mask is drawn here and baked into the op, making the backward
    /// pass exact for this forward. `p == 0` is the identity.
    pub fn dropout(&mut self, a: Var, p: f32, rng: &mut impl rand::Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        if p == 0.0 {
            return a;
        }
        let (rows, cols) = self.value(a).shape();
        let keep = 1.0 - p;
        let mask_data: Vec<f32> =
            (0..rows * cols).map(|_| if rng.gen::<f32>() < p { 0.0 } else { 1.0 / keep }).collect();
        let mask = Matrix::from_vec(rows, cols, mask_data);
        let out = self.value(a).hadamard(&mask);
        self.push(out, Op::Dropout { input: a, mask })
    }

    /// Per-row layer normalization (zero mean, unit variance per row; no
    /// learned affine — compose with `row_scale`/`add_row_broadcast` for
    /// gain and bias).
    pub fn layer_norm(&mut self, a: Var) -> Var {
        let eps = 1e-5f32;
        let src = self.value(a);
        let (rows, cols) = src.shape();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let row = src.row(r);
            let mean = row.iter().sum::<f32>() / cols.max(1) as f32;
            let var =
                row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / cols.max(1) as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (o, &x) in out.row_mut(r).iter_mut().zip(row) {
                *o = (x - mean) * inv;
            }
        }
        self.push(out, Op::LayerNorm { input: a, eps })
    }

    // ---- composites ------------------------------------------------------

    /// Dot product of two `1×d` row vectors → `1×1`.
    pub fn dot(&mut self, a: Var, b: Var) -> Var {
        let bt = self.transpose(b);
        self.matmul(a, bt)
    }

    /// Dense layer: `x·W + b` with `x: n×in`, `W: in×out`, `b: 1×out`,
    /// running as one fused `matmul_bias` kernel call (the bias is added as
    /// each output tile is stored — no second pass over the output, and no
    /// intermediate `x·W` node on the tape).
    pub fn linear(&mut self, x: Var, w: Var, b: Var) -> Var {
        let bv = self.value(b);
        assert_eq!(bv.rows(), 1, "linear: bias must be a 1×d row vector");
        let v = self.value(x).matmul_bias(self.value(w), bv.row(0));
        self.push(v, Op::Linear { x, w, b })
    }

    /// Mean of several `1×d` vectors (mean pooling aggregation).
    pub fn mean_pool(&mut self, rows: &[Var]) -> Var {
        let stacked = self.concat_rows(rows);
        self.mean_rows(stacked)
    }

    // ---- backward --------------------------------------------------------

    /// Reverse sweep from `loss` (which must be `1×1`). Returns the gradient
    /// of the loss with respect to every node.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward: loss must be a 1x1 scalar");
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for i in (0..self.nodes.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            self.accumulate_parents(i, &g, &mut grads);
            grads[i] = Some(g);
        }
        Gradients { grads }
    }

    fn accum(grads: &mut [Option<Matrix>], v: Var, delta: Matrix) {
        match &mut grads[v.0] {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn accumulate_parents(&self, i: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        match &self.nodes[i].op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                // dA = g · Bᵀ ; dB = Aᵀ · g
                let da = g.matmul(&self.value(*b).transpose());
                let db = self.value(*a).transpose().matmul(g);
                Self::accum(grads, *a, da);
                Self::accum(grads, *b, db);
            }
            Op::Add(a, b) => {
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *b, g.scale(-1.0));
            }
            Op::Hadamard(a, b) => {
                Self::accum(grads, *a, g.hadamard(self.value(*b)));
                Self::accum(grads, *b, g.hadamard(self.value(*a)));
            }
            Op::AddRowBroadcast(m, row) => {
                Self::accum(grads, *m, g.clone());
                // Row gradient is the column-sum of g.
                let mut rg = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &x) in rg.as_mut_slice().iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                Self::accum(grads, *row, rg);
            }
            Op::Linear { x, w, b } => {
                // Same gradients as MatMul + AddRowBroadcast, one node:
                // dX = g·Wᵀ ; dW = Xᵀ·g ; db = column-sum of g.
                let dx = g.matmul(&self.value(*w).transpose());
                let dw = self.value(*x).transpose().matmul(g);
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &gx) in db.as_mut_slice().iter_mut().zip(g.row(r)) {
                        *o += gx;
                    }
                }
                Self::accum(grads, *x, dx);
                Self::accum(grads, *w, dw);
                Self::accum(grads, *b, db);
            }
            Op::Scale(a, c) => {
                Self::accum(grads, *a, g.scale(*c));
            }
            Op::ConcatCols(a, b) => {
                let ca = self.value(*a).cols();
                let cb = self.value(*b).cols();
                let rows = g.rows();
                let mut ga = Matrix::zeros(rows, ca);
                let mut gb = Matrix::zeros(rows, cb);
                for r in 0..rows {
                    ga.row_mut(r).copy_from_slice(&g.row(r)[..ca]);
                    gb.row_mut(r).copy_from_slice(&g.row(r)[ca..ca + cb]);
                }
                Self::accum(grads, *a, ga);
                Self::accum(grads, *b, gb);
            }
            Op::ConcatRows(rows) => {
                for (r, &v) in rows.iter().enumerate() {
                    Self::accum(grads, v, Matrix::row_vector(g.row(r)));
                }
            }
            Op::MeanRows(a) => {
                let n = self.value(*a).rows().max(1);
                let inv = 1.0 / n as f32;
                let mut ga = Matrix::zeros(self.value(*a).rows(), g.cols());
                for r in 0..ga.rows() {
                    for (o, &x) in ga.row_mut(r).iter_mut().zip(g.row(0)) {
                        *o = x * inv;
                    }
                }
                Self::accum(grads, *a, ga);
            }
            Op::SumRows(a) => {
                let mut ga = Matrix::zeros(self.value(*a).rows(), g.cols());
                for r in 0..ga.rows() {
                    ga.row_mut(r).copy_from_slice(g.row(0));
                }
                Self::accum(grads, *a, ga);
            }
            Op::Transpose(a) => {
                Self::accum(grads, *a, g.transpose());
            }
            Op::SoftmaxRows(a) => {
                // dX_row = (g_row − (g_row·y_row)) ⊙ y_row  (per row).
                let y = &self.nodes[i].value;
                let mut ga = Matrix::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let gy: f32 = g.row(r).iter().zip(y.row(r)).map(|(&gg, &yy)| gg * yy).sum();
                    for ((o, &gg), &yy) in ga.row_mut(r).iter_mut().zip(g.row(r)).zip(y.row(r)) {
                        *o = (gg - gy) * yy;
                    }
                }
                Self::accum(grads, *a, ga);
            }
            Op::LeakyRelu(a) => {
                let x = self.value(*a);
                let mut ga = g.clone();
                for (gg, &xx) in ga.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    *gg *= leaky_relu_grad(xx);
                }
                Self::accum(grads, *a, ga);
            }
            Op::Relu(a) => {
                let x = self.value(*a);
                let mut ga = g.clone();
                for (gg, &xx) in ga.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    if xx < 0.0 {
                        *gg = 0.0;
                    }
                }
                Self::accum(grads, *a, ga);
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[i].value;
                let mut ga = g.clone();
                for (gg, &yy) in ga.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *gg *= yy * (1.0 - yy);
                }
                Self::accum(grads, *a, ga);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[i].value;
                let mut ga = g.clone();
                for (gg, &yy) in ga.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *gg *= 1.0 - yy * yy;
                }
                Self::accum(grads, *a, ga);
            }
            Op::RowScale { h, w } => {
                let hv = self.value(*h);
                let wv = self.value(*w);
                let (n, d) = hv.shape();
                let mut gh = Matrix::zeros(n, d);
                let mut gw = Matrix::zeros(1, n);
                for r in 0..n {
                    let s = wv.get(0, r);
                    let mut acc = 0.0f32;
                    for ((o, &gg), &hh) in gh.row_mut(r).iter_mut().zip(g.row(r)).zip(hv.row(r)) {
                        *o = gg * s;
                        acc += gg * hh;
                    }
                    gw.set(0, r, acc);
                }
                Self::accum(grads, *h, gh);
                Self::accum(grads, *w, gw);
            }
            Op::Cosine(a, b) => {
                let av = self.value(*a);
                let bv = self.value(*b);
                let na = l2_norm(av.row(0));
                let nb = l2_norm(bv.row(0));
                let gs = g.get(0, 0);
                if na <= f32::EPSILON || nb <= f32::EPSILON {
                    // Defined as constant 0 there: zero gradient.
                    Self::accum(grads, *a, Matrix::zeros(1, av.cols()));
                    Self::accum(grads, *b, Matrix::zeros(1, bv.cols()));
                } else {
                    let c = self.nodes[i].value.get(0, 0);
                    let mut ga = Matrix::zeros(1, av.cols());
                    let mut gb = Matrix::zeros(1, bv.cols());
                    for k in 0..av.cols() {
                        let x = av.get(0, k);
                        let y = bv.get(0, k);
                        ga.set(0, k, gs * (y / (na * nb) - c * x / (na * na)));
                        gb.set(0, k, gs * (x / (na * nb) - c * y / (nb * nb)));
                    }
                    Self::accum(grads, *a, ga);
                    Self::accum(grads, *b, gb);
                }
            }
            Op::ScaleByScalarVar { m, s } => {
                let sv = self.value(*s).get(0, 0);
                Self::accum(grads, *m, g.scale(sv));
                let ds: f32 = g
                    .as_slice()
                    .iter()
                    .zip(self.value(*m).as_slice())
                    .map(|(&gg, &mm)| gg * mm)
                    .sum();
                Self::accum(grads, *s, Matrix::from_vec(1, 1, vec![ds]));
            }
            Op::SumAll(a) => {
                let (r, c) = self.value(*a).shape();
                Self::accum(grads, *a, Matrix::full(r, c, g.get(0, 0)));
            }
            Op::MeanAll(a) => {
                let (r, c) = self.value(*a).shape();
                let n = (r * c).max(1) as f32;
                Self::accum(grads, *a, Matrix::full(r, c, g.get(0, 0) / n));
            }
            Op::FocalBceWithLogits { logit, label, gamma } => {
                let z = self.value(*logit).get(0, 0);
                let p = sigmoid(z).clamp(1e-7, 1.0 - 1e-7);
                let (pt, dpt_dz) =
                    if *label > 0.5 { (p, p * (1.0 - p)) } else { (1.0 - p, -(p * (1.0 - p))) };
                // L = −(1−pt)^γ ln(pt)
                // dL/dpt = γ(1−pt)^{γ−1} ln(pt) − (1−pt)^γ / pt
                let one_m = (1.0 - pt).max(0.0);
                let dl_dpt = if *gamma == 0.0 {
                    -1.0 / pt
                } else {
                    *gamma * one_m.powf(*gamma - 1.0) * pt.ln() - one_m.powf(*gamma) / pt
                };
                let dz = g.get(0, 0) * dl_dpt * dpt_dz;
                Self::accum(grads, *logit, Matrix::from_vec(1, 1, vec![dz]));
            }
            Op::SquaredFrobenius(a) => {
                let gs = g.get(0, 0);
                Self::accum(grads, *a, self.value(*a).scale(2.0 * gs));
            }
            Op::Dropout { input, mask } => {
                Self::accum(grads, *input, g.hadamard(mask));
            }
            Op::LayerNorm { input, eps } => {
                // For y = (x − μ)/σ with σ = √(var + ε):
                // dx = (g − mean(g) − y·mean(g ⊙ y)) / σ   (per row)
                let x = self.value(*input);
                let y = &self.nodes[i].value;
                let (rows, cols) = x.shape();
                let n = cols.max(1) as f32;
                let mut gx = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    let row = x.row(r);
                    let mean = row.iter().sum::<f32>() / n;
                    let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
                    let sigma = (var + eps).sqrt();
                    let g_row = g.row(r);
                    let y_row = y.row(r);
                    let g_mean = g_row.iter().sum::<f32>() / n;
                    let gy_mean =
                        g_row.iter().zip(y_row).map(|(&gg, &yy)| gg * yy).sum::<f32>() / n;
                    for ((o, &gg), &yy) in gx.row_mut(r).iter_mut().zip(g_row).zip(y_row) {
                        *o = (gg - g_mean - yy * gy_mean) / sigma;
                    }
                }
                Self::accum(grads, *input, gx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn fused_linear_matches_unfused_forward_and_backward() {
        let xs = [0.3f32, -1.2, 2.0, 0.7, -0.4, 1.1];
        let ws = [0.5f32, -0.25, 1.5, 0.75, -1.0, 2.0];
        let bs = [0.1f32, -0.2];
        // Fused Op::Linear.
        let mut tf = Tape::new();
        let (x, w, b) = (tf.leaf(m(2, 3, &xs)), tf.leaf(m(3, 2, &ws)), tf.leaf(m(1, 2, &bs)));
        let y = tf.linear(x, w, b);
        let loss = tf.sum_all(y);
        let gf = tf.backward(loss);
        // Unfused matmul + broadcast add.
        let mut tu = Tape::new();
        let (xu, wu, bu) = (tu.leaf(m(2, 3, &xs)), tu.leaf(m(3, 2, &ws)), tu.leaf(m(1, 2, &bs)));
        let xw = tu.matmul(xu, wu);
        let yu = tu.add_row_broadcast(xw, bu);
        let lossu = tu.sum_all(yu);
        let gu = tu.backward(lossu);
        assert_eq!(tf.value(y), tu.value(yu), "fused forward diverges");
        for ((a, b2), name) in
            [(x, xu), (w, wu), (b, bu)].iter().zip(["x", "w", "b"].iter().cycle())
        {
            assert_eq!(gf.get(*a), gu.get(*b2), "fused gradient for {name} diverges");
        }
    }

    #[test]
    fn forward_values_basic_chain() {
        let mut t = Tape::new();
        let x = t.leaf(m(1, 2, &[1.0, 2.0]));
        let w = t.leaf(m(2, 2, &[1.0, 0.0, 0.0, 1.0]));
        let y = t.matmul(x, w);
        assert_eq!(t.value(y).as_slice(), &[1.0, 2.0]);
        let s = t.sum_all(y);
        assert_eq!(t.scalar(s), 3.0);
    }

    #[test]
    fn backward_matmul_known_gradient() {
        // loss = sum(x·W): dx = row sums of Wᵀ rows, dW = xᵀ·1
        let mut t = Tape::new();
        let x = t.leaf(m(1, 2, &[2.0, 3.0]));
        let w = t.leaf(m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        let y = t.matmul(x, w);
        let loss = t.sum_all(y);
        let g = t.backward(loss);
        assert_eq!(g.get(x).unwrap().as_slice(), &[3.0, 7.0]);
        assert_eq!(g.get(w).unwrap().as_slice(), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn backward_accumulates_fanout() {
        // y = x + x → dy/dx = 2.
        let mut t = Tape::new();
        let x = t.leaf(m(1, 1, &[5.0]));
        let y = t.add(x, x);
        let loss = t.sum_all(y);
        let g = t.backward(loss);
        assert_eq!(g.get(x).unwrap().get(0, 0), 2.0);
    }

    #[test]
    fn gradients_absent_for_unused_nodes() {
        let mut t = Tape::new();
        let x = t.leaf(m(1, 1, &[1.0]));
        let unused = t.leaf(m(1, 1, &[9.0]));
        let loss = t.sum_all(x);
        let g = t.backward(loss);
        assert!(g.get(x).is_some());
        assert!(g.get(unused).is_none());
        assert_eq!(g.get_or_zeros(unused, 1, 1).get(0, 0), 0.0);
    }

    #[test]
    fn softmax_rows_forward_is_distribution() {
        let mut t = Tape::new();
        let x = t.leaf(m(2, 3, &[1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let y = t.softmax_rows(x);
        for r in 0..2 {
            let s: f32 = t.value(y).row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn row_scale_forward() {
        let mut t = Tape::new();
        let h = t.leaf(m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        let w = t.leaf(m(1, 2, &[10.0, 0.5]));
        let z = t.row_scale(h, w);
        assert_eq!(t.value(z).as_slice(), &[10.0, 20.0, 1.5, 2.0]);
    }

    #[test]
    fn cosine_forward_matches_tensor() {
        let mut t = Tape::new();
        let a = t.leaf(m(1, 3, &[1.0, 0.0, 0.0]));
        let b = t.leaf(m(1, 3, &[1.0, 1.0, 0.0]));
        let c = t.cosine(a, b);
        assert!((t.scalar(c) - 1.0 / 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_zero_grad() {
        let mut t = Tape::new();
        let a = t.leaf(m(1, 2, &[0.0, 0.0]));
        let b = t.leaf(m(1, 2, &[1.0, 2.0]));
        let c = t.cosine(a, b);
        assert_eq!(t.scalar(c), 0.0);
        let g = t.backward(c);
        assert_eq!(g.get(b).unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn focal_bce_matches_plain_bce_at_gamma_zero() {
        let mut t = Tape::new();
        let z = t.scalar_leaf(0.7);
        let l = t.focal_bce_with_logits(z, 1.0, 0.0);
        let p = sigmoid(0.7);
        assert!((t.scalar(l) + p.ln()).abs() < 1e-6);
        // d/dz BCE-with-logits = p − label
        let g = t.backward(l);
        assert!((g.get(z).unwrap().get(0, 0) - (p - 1.0)).abs() < 1e-5);
    }

    #[test]
    fn mean_pool_gradient_splits_evenly() {
        let mut t = Tape::new();
        let a = t.leaf(m(1, 2, &[1.0, 2.0]));
        let b = t.leaf(m(1, 2, &[3.0, 4.0]));
        let pooled = t.mean_pool(&[a, b]);
        assert_eq!(t.value(pooled).as_slice(), &[2.0, 3.0]);
        let loss = t.sum_all(pooled);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().as_slice(), &[0.5, 0.5]);
        assert_eq!(g.get(b).unwrap().as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn linear_layer_shapes() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(3, 4, 1.0));
        let w = t.leaf(Matrix::full(4, 2, 0.5));
        let b = t.leaf(m(1, 2, &[1.0, -1.0]));
        let y = t.linear(x, w, b);
        assert_eq!(t.value(y).shape(), (3, 2));
        assert_eq!(t.value(y).get(0, 0), 3.0);
        assert_eq!(t.value(y).get(0, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1x1 scalar")]
    fn backward_requires_scalar_loss() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        let _ = t.backward(x);
    }

    #[test]
    fn concat_cols_backward_splits() {
        let mut t = Tape::new();
        let a = t.leaf(m(1, 2, &[1.0, 2.0]));
        let b = t.leaf(m(1, 1, &[3.0]));
        let c = t.concat_cols(a, b);
        let w = t.leaf(m(3, 1, &[1.0, 10.0, 100.0]));
        let y = t.matmul(c, w);
        let loss = t.sum_all(y);
        let g = t.backward(loss);
        assert_eq!(g.get(a).unwrap().as_slice(), &[1.0, 10.0]);
        assert_eq!(g.get(b).unwrap().as_slice(), &[100.0]);
    }

    #[test]
    fn layer_norm_rows_are_standardized() {
        let mut t = Tape::new();
        let x = t.leaf(m(2, 4, &[1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0]));
        let y = t.layer_norm(x);
        for r in 0..2 {
            let row = t.value(y).row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn dropout_zero_p_is_identity_and_masks_scale() {
        let mut rng = zoomer_tensor::seeded_rng(5);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(1, 1000, 1.0));
        let same = t.dropout(x, 0.0, &mut rng);
        assert_eq!(same, x, "p = 0 must be the identity (no new node)");
        let dropped = t.dropout(x, 0.5, &mut rng);
        let vals: Vec<f32> = t.value(dropped).as_slice().to_vec();
        let zeros = vals.iter().filter(|&&v| v == 0.0).count();
        assert!((350..650).contains(&zeros), "~half dropped, got {zeros}");
        // Survivors scaled by 2 → mean stays ≈ 1.
        let mean: f32 = vals.iter().sum::<f32>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
        // Backward: gradient only flows through survivors, scaled.
        let s = t.sum_all(dropped);
        let g = t.backward(s);
        let gx = g.get(x).expect("grad");
        for (gv, &v) in gx.as_slice().iter().zip(&vals) {
            assert_eq!(*gv, if v == 0.0 { 0.0 } else { 2.0 });
        }
    }

    #[test]
    fn scale_by_scalar_var_grads() {
        let mut t = Tape::new();
        let mmat = t.leaf(m(1, 2, &[2.0, 3.0]));
        let s = t.scalar_leaf(4.0);
        let y = t.scale_by_scalar_var(mmat, s);
        let loss = t.sum_all(y);
        let g = t.backward(loss);
        assert_eq!(g.get(mmat).unwrap().as_slice(), &[4.0, 4.0]);
        assert_eq!(g.get(s).unwrap().get(0, 0), 5.0);
    }
}
