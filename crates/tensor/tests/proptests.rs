//! Property-based tests for the tensor crate's core invariants.

use proptest::prelude::*;
use zoomer_tensor::{
    auc, cosine_similarity, dot, dot4, kernel, stable_softmax, tanimoto_similarity, Matrix,
};

fn small_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|x| (x * 100.0).round() / 100.0)
}

/// Values for the kernel equivalence suite: finite, with real zero mass
/// (both signs) so the reference kernel's sparsity skip actually fires.
fn kernel_f32() -> impl Strategy<Value = f32> {
    (-4.0f32..4.0).prop_map(|x| {
        if (0.0..0.8).contains(&x) {
            0.0
        } else if (-0.8..0.0).contains(&x) {
            -0.0
        } else {
            (x * 25.0).round() / 25.0
        }
    })
}

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(small_f32(), len)
}

/// Operand pool for the GEMM proptests: dims are drawn in `0..20` (covering
/// `rows = 0`, `cols = 1`, the `NR = 8` tile width, and every
/// non-multiple-of-tile size in between), and matrices are carved out of a
/// shared fixed-size value pool since the vendored proptest has no
/// `prop_flat_map` for length-dependent vectors.
const GEMM_DIM_MAX: usize = 20;
const GEMM_POOL: usize = 2 * GEMM_DIM_MAX * GEMM_DIM_MAX + GEMM_DIM_MAX;

fn gemm_operands(pool: &[f32], m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let off = GEMM_DIM_MAX * GEMM_DIM_MAX;
    (pool[..m * k].to_vec(), pool[off..off + k * n].to_vec(), pool[2 * off..2 * off + n].to_vec())
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #[test]
    fn softmax_is_distribution(xs in prop::collection::vec(-50.0f32..50.0, 1..32)) {
        let p = stable_softmax(&xs);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_preserves_order(xs in prop::collection::vec(-50.0f32..50.0, 2..16)) {
        let p = stable_softmax(&xs);
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] > xs[j] {
                    prop_assert!(p[i] >= p[j]);
                }
            }
        }
    }

    #[test]
    fn cosine_bounded(a in vec_f32(8), b in vec_f32(8)) {
        let c = cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
        // Symmetry.
        prop_assert!((c - cosine_similarity(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn tanimoto_bounded_above_by_one(a in vec_f32(8), b in vec_f32(8)) {
        // Tanimoto over reals is ≤ 1 (equality iff a == b) and ≥ -1/3.
        let t = tanimoto_similarity(&a, &b);
        prop_assert!(t <= 1.0 + 1e-5, "t = {t}");
        prop_assert!(t >= -1.0 / 3.0 - 1e-4, "t = {t}");
        prop_assert!((t - tanimoto_similarity(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn matmul_distributes_over_add(
        a in vec_f32(12), b in vec_f32(12), c in vec_f32(12)
    ) {
        let a = Matrix::from_vec(3, 4, a);
        let b = Matrix::from_vec(4, 3, b);
        let c = Matrix::from_vec(4, 3, c);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn transpose_reverses_matmul(a in vec_f32(6), b in vec_f32(6)) {
        let a = Matrix::from_vec(2, 3, a);
        let b = Matrix::from_vec(3, 2, b);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn auc_invariant_to_monotone_transform(
        pairs in prop::collection::vec((0.0f32..1.0, prop::bool::ANY), 4..64)
    ) {
        let scores: Vec<f32> = pairs.iter().map(|(s, _)| *s).collect();
        let labels: Vec<f32> = pairs.iter().map(|(_, l)| if *l { 1.0 } else { 0.0 }).collect();
        let base = auc(&scores, &labels);
        // Apply a strictly increasing transform that cannot saturate in f32
        // over [0, 1] (tanh-style squashers collapse nearby scores into ties
        // and change the AUC): an affine map.
        let transformed: Vec<f32> = scores.iter().map(|&s| 2.5 * s - 0.75).collect();
        let t = auc(&transformed, &labels);
        prop_assert!((base - t).abs() < 1e-6, "{base} vs {t}");
    }

    /// Satellite (c): the blocked serial kernel is bit-identical to the
    /// naive reference across random shapes, including degenerate ones
    /// (`rows = 0`, `cols = 1`) and sizes that straddle the register tiles,
    /// with and without a fused bias.
    #[test]
    fn blocked_gemm_bitwise_matches_reference(
        m in 0usize..GEMM_DIM_MAX,
        k in 0usize..GEMM_DIM_MAX,
        n in 0usize..GEMM_DIM_MAX,
        pool in prop::collection::vec(kernel_f32(), GEMM_POOL),
    ) {
        let (a, b, bias) = gemm_operands(&pool, m, k, n);
        let am = Matrix::from_vec(m, k, a);
        let bm = Matrix::from_vec(k, n, b);
        prop_assert_eq!(bits(&am.matmul(&bm)), bits(&am.matmul_reference(&bm)));
        prop_assert_eq!(
            bits(&am.matmul_bias(&bm, &bias)),
            bits(&am.matmul_bias_reference(&bm, &bias))
        );
    }

    /// Satellite (c): forcing the parallel row-band split — any band count,
    /// including more bands than rows — never changes a single bit relative
    /// to the naive reference.
    #[test]
    fn banded_gemm_bitwise_matches_reference(
        m in 0usize..GEMM_DIM_MAX,
        k in 0usize..GEMM_DIM_MAX,
        n in 0usize..GEMM_DIM_MAX,
        bands in 2usize..9,
        pool in prop::collection::vec(kernel_f32(), GEMM_POOL),
    ) {
        let (a, b, bias) = gemm_operands(&pool, m, k, n);
        let mut expect = vec![0.0f32; m * n];
        kernel::matmul_reference(&a, &b, m, k, n, &mut expect);
        for (o, &bv) in expect.chunks_exact_mut(n.max(1)).flat_map(|r| r.iter_mut().zip(&bias)) {
            *o += bv;
        }
        let mut got = vec![f32::NAN; m * n];
        kernel::gemm_banded(&a, &b, Some(&bias), m, k, n, &mut got, bands);
        let expect_bits: Vec<u32> = expect.iter().map(|x| x.to_bits()).collect();
        let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(expect_bits, got_bits);
    }

    /// Satellite (c): the 4-query blocked scorer applies the exact lane
    /// scheme of the single-query `dot`, so block-scored and
    /// remainder-scored queries in the IVF path are bit-identical.
    #[test]
    fn dot4_bitwise_matches_dot(
        len in 0usize..40,
        seed_vecs in prop::collection::vec(kernel_f32(), 200),
    ) {
        let take = |o: usize| -> Vec<f32> { seed_vecs[o..o + len].to_vec() };
        let (v, q0, q1, q2, q3) = (take(0), take(40), take(80), take(120), take(160));
        let got = dot4(&v, &q0, &q1, &q2, &q3);
        let want = [dot(&v, &q0), dot(&v, &q1), dot(&v, &q2), dot(&v, &q3)];
        prop_assert_eq!(got.map(f32::to_bits), want.map(f32::to_bits));
    }

    /// PR 8 tentpole: quantize→dequantize round-trip error is at most
    /// `scale/2` per element (the nearest-code property), for any finite
    /// input vector including constants and single elements.
    #[test]
    fn quantize_round_trip_error_bounded_by_half_scale(
        v in prop::collection::vec(-100.0f32..100.0, 1..64)
    ) {
        let (codes, p) = zoomer_tensor::quantize(&v);
        prop_assert_eq!(codes.len(), v.len());
        prop_assert!(p.scale > 0.0);
        let back = zoomer_tensor::dequantize(&codes, &p);
        for (&x, &y) in v.iter().zip(&back) {
            let err = (x as f64 - y as f64).abs();
            prop_assert!(
                err <= p.scale as f64 * 0.5 * (1.0 + 1e-6),
                "|{} - {}| = {} > scale/2 = {}", x, y, err, p.scale * 0.5
            );
        }
        prop_assert_eq!(p.code_sum, codes.iter().map(|&c| c as i32).sum::<i32>());
    }

    /// PR 8 tentpole: the blocked i8 kernels are exactly the naive i32
    /// reference — integer accumulation, so equality is `==`, not
    /// bit-tolerance.
    #[test]
    fn dot_i8_matches_i32_reference(
        len in 0usize..70,
        pool in prop::collection::vec(-127i8..=127, 350),
    ) {
        let take = |o: usize| -> Vec<i8> { pool[o..o + len].to_vec() };
        let (v, q0, q1, q2, q3) = (take(0), take(70), take(140), take(210), take(280));
        prop_assert_eq!(kernel::dot_i8(&v, &q0), kernel::dot_i8_reference(&v, &q0));
        let got = kernel::dot4_i8(&v, &q0, &q1, &q2, &q3);
        let want = [
            kernel::dot_i8(&v, &q0),
            kernel::dot_i8(&v, &q1),
            kernel::dot_i8(&v, &q2),
            kernel::dot_i8(&v, &q3),
        ];
        prop_assert_eq!(got, want, "dot4_i8 must equal dot_i8 per query");
    }
}

proptest! {
    #[test]
    fn auc_flipping_scores_complements(
        pairs in prop::collection::vec((0.0f32..1.0, prop::bool::ANY), 4..64)
    ) {
        let scores: Vec<f32> = pairs.iter().map(|(s, _)| *s).collect();
        let labels: Vec<f32> = pairs.iter().map(|(_, l)| if *l { 1.0 } else { 0.0 }).collect();
        let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let base = auc(&scores, &labels);
        let neg: Vec<f32> = scores.iter().map(|&s| -s).collect();
        prop_assert!((base + auc(&neg, &labels) - 1.0).abs() < 1e-6);
    }
}
