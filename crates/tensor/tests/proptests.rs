//! Property-based tests for the tensor crate's core invariants.

use proptest::prelude::*;
use zoomer_tensor::{auc, cosine_similarity, stable_softmax, tanimoto_similarity, Matrix};

fn small_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|x| (x * 100.0).round() / 100.0)
}

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(small_f32(), len)
}

proptest! {
    #[test]
    fn softmax_is_distribution(xs in prop::collection::vec(-50.0f32..50.0, 1..32)) {
        let p = stable_softmax(&xs);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_preserves_order(xs in prop::collection::vec(-50.0f32..50.0, 2..16)) {
        let p = stable_softmax(&xs);
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] > xs[j] {
                    prop_assert!(p[i] >= p[j]);
                }
            }
        }
    }

    #[test]
    fn cosine_bounded(a in vec_f32(8), b in vec_f32(8)) {
        let c = cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
        // Symmetry.
        prop_assert!((c - cosine_similarity(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn tanimoto_bounded_above_by_one(a in vec_f32(8), b in vec_f32(8)) {
        // Tanimoto over reals is ≤ 1 (equality iff a == b) and ≥ -1/3.
        let t = tanimoto_similarity(&a, &b);
        prop_assert!(t <= 1.0 + 1e-5, "t = {t}");
        prop_assert!(t >= -1.0 / 3.0 - 1e-4, "t = {t}");
        prop_assert!((t - tanimoto_similarity(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn matmul_distributes_over_add(
        a in vec_f32(12), b in vec_f32(12), c in vec_f32(12)
    ) {
        let a = Matrix::from_vec(3, 4, a);
        let b = Matrix::from_vec(4, 3, b);
        let c = Matrix::from_vec(4, 3, c);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-2);
    }

    #[test]
    fn transpose_reverses_matmul(a in vec_f32(6), b in vec_f32(6)) {
        let a = Matrix::from_vec(2, 3, a);
        let b = Matrix::from_vec(3, 2, b);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn auc_invariant_to_monotone_transform(
        pairs in prop::collection::vec((0.0f32..1.0, prop::bool::ANY), 4..64)
    ) {
        let scores: Vec<f32> = pairs.iter().map(|(s, _)| *s).collect();
        let labels: Vec<f32> = pairs.iter().map(|(_, l)| if *l { 1.0 } else { 0.0 }).collect();
        let base = auc(&scores, &labels);
        // Apply a strictly increasing transform that cannot saturate in f32
        // over [0, 1] (tanh-style squashers collapse nearby scores into ties
        // and change the AUC): an affine map.
        let transformed: Vec<f32> = scores.iter().map(|&s| 2.5 * s - 0.75).collect();
        let t = auc(&transformed, &labels);
        prop_assert!((base - t).abs() < 1e-6, "{base} vs {t}");
    }

    #[test]
    fn auc_flipping_scores_complements(
        pairs in prop::collection::vec((0.0f32..1.0, prop::bool::ANY), 4..64)
    ) {
        let scores: Vec<f32> = pairs.iter().map(|(s, _)| *s).collect();
        let labels: Vec<f32> = pairs.iter().map(|(_, l)| if *l { 1.0 } else { 0.0 }).collect();
        let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let base = auc(&scores, &labels);
        let neg: Vec<f32> = scores.iter().map(|&s| -s).collect();
        prop_assert!((base + auc(&neg, &labels) - 1.0).abs() < 1e-6);
    }
}
