//! Seeded randomness and weight initialization.
//!
//! Every experiment in the workspace derives all randomness from a single
//! printed `u64` seed through ChaCha8, so results are exactly reproducible.

use crate::Matrix;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic RNG from a `u64` seed.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derive a child RNG for a named subsystem, so parallel components get
/// independent, reproducible streams.
pub fn derive_rng(seed: u64, stream: &str) -> ChaCha8Rng {
    // FNV-1a over the stream name mixed into the seed.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in stream.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    seeded_rng(seed ^ h)
}

/// Xavier/Glorot-uniform initialized matrix: `U(−√(6/(fan_in+fan_out)), +…)`.
pub fn xavier_matrix(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-limit..=limit)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Xavier-uniform vector, treated as fan_in = len, fan_out = 1.
pub fn xavier_vec(rng: &mut impl Rng, len: usize) -> Vec<f32> {
    let limit = (6.0 / (len + 1) as f32).sqrt();
    (0..len).map(|_| rng.gen_range(-limit..=limit)).collect()
}

/// A unit vector drawn uniformly from the sphere (via normalized Gaussians).
pub fn random_unit_vec(rng: &mut impl Rng, dim: usize) -> Vec<f32> {
    loop {
        let v: Vec<f32> = (0..dim).map(|_| standard_normal(rng)).collect();
        let n = crate::l2_norm(&v);
        if n > 1e-6 {
            return v.iter().map(|x| x / n).collect();
        }
    }
}

/// Standard normal via Box–Muller (avoids the rand_distr dependency).
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = derive_rng(7, "workers");
        let mut b = derive_rng(7, "sampler");
        // Overwhelmingly unlikely to match for independent streams.
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = seeded_rng(1);
        let m = xavier_matrix(&mut rng, 8, 8);
        let limit = (6.0f32 / 16.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit + 1e-6));
        // Should not be degenerate (all zeros).
        assert!(m.frobenius_norm() > 0.1);
    }

    #[test]
    fn unit_vec_has_unit_norm() {
        let mut rng = seeded_rng(2);
        for dim in [1, 3, 64] {
            let v = random_unit_vec(&mut rng, dim);
            assert!((crate::l2_norm(&v) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded_rng(3);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
