//! Dense matrix math, numerics, and ranking metrics for the Zoomer reproduction.
//!
//! This crate is the numeric foundation of the workspace: a row-major [`Matrix`]
//! type with the small set of dense operations the GNN stack needs, numerically
//! stable activations, similarity kernels (including the paper's eq. (5)
//! Tanimoto-style focal-relevance kernel), seeded random initialization, and
//! the evaluation metrics reported in the paper (AUC, MAE, RMSE, HitRate@K).
//!
//! Design notes
//! - Everything is `f32` (matching production recommender practice); metric
//!   accumulation happens in `f64` to avoid drift over large test sets.
//! - No unsafe, no SIMD intrinsics: the matmul is a register-blocked,
//!   optionally row-parallel kernel (see [`kernel`]) whose inner loops are
//!   written for auto-vectorization, pinned bit-for-bit to the seed's naive
//!   ikj reference by a proptest equivalence suite.
//! - All randomness is driven by caller-provided RNGs so experiments are
//!   reproducible from a printed seed.

// Audited: this crate contains no unsafe and the "no unsafe" note above is
// load-bearing for the serving hot path, so make the compiler keep it true.
// `unsafe_op_in_unsafe_fn` is additionally denied workspace-wide (zoomer-lint
// L002 requires a `// SAFETY:` comment should unsafe ever be introduced).
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

pub mod kernel;
pub mod matrix;
pub mod metrics;
pub mod numerics;
pub mod quant;
pub mod rng;
pub mod similarity;

pub use matrix::Matrix;
pub use metrics::{auc, hit_rate_at_k, mae, mean_reciprocal_rank, ndcg_at_k, rmse};
pub use numerics::{leaky_relu, log_sum_exp, relu, sigmoid, softmax_inplace, stable_softmax};
pub use quant::{dequantize, quantize, quantize_into, quantized_dot, QuantParams};
pub use rng::{seeded_rng, xavier_matrix, xavier_vec};
pub use similarity::{cosine_similarity, dot, dot4, l2_norm, tanimoto_similarity};
