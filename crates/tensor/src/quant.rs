//! Int8 scalar quantization for embedding storage.
//!
//! The billion-tier serving premise (ROADMAP: "billion-tier memory
//! scaling") is that the item-embedding table dwarfs what f32-in-RAM
//! tolerates. This module shrinks each vector 4× by storing one i8 *code*
//! per element plus two per-vector parameters:
//!
//! ```text
//! x̂[i] = zero_point + scale · code[i],      code[i] ∈ [-127, 127]
//! ```
//!
//! `scale` spans the vector's own value range (`(max−min)/254`) and
//! `zero_point` is the value code 0 dequantizes to (the range midpoint), so
//! the 255 representable levels cover exactly `[min, max]` and the
//! round-trip error is at most `scale/2` per element — the bound the
//! proptest suite pins.
//!
//! Scoring never dequantizes. The inner product of two quantized vectors
//! factors into one integer code-dot plus terms of the precomputed per-
//! vector code sums:
//!
//! ```text
//! ⟨x, y⟩ ≈ sx·sy·Σ(cx·cy) + sx·zy·Σcx + sy·zx·Σcy + d·zx·zy
//! ```
//!
//! where every `Σ` is exact i32 arithmetic ([`crate::kernel::dot_i8`] /
//! [`crate::kernel::dot4_i8`], bounded by
//! [`crate::kernel::MAX_DOT_I8_DIM`]) and only the final combination runs
//! in f32. [`quantized_dot`] is the one implementation of that formula, so
//! a score never depends on which call site computed it.

use crate::kernel::{dot_i8, MAX_DOT_I8_DIM};

/// Largest code magnitude: codes live in `[-QUANT_CODE_MAX, QUANT_CODE_MAX]`.
/// The range is symmetric (255 levels, not 256) so negating a vector negates
/// its codes exactly and `|code| ≤ 127` keeps every pairwise product within
/// the [`MAX_DOT_I8_DIM`] i32-overflow budget.
pub const QUANT_CODE_MAX: i32 = 127;

/// Per-vector dequantization parameters: `x̂[i] = zero_point + scale·code[i]`.
///
/// `code_sum` is `Σ code[i]`, precomputed at quantization time because every
/// cross term of the factored inner product needs it (12 bytes per vector
/// next to `dim` code bytes; at `dim = 16` the parameters are the dominant
/// overhead, at production widths they vanish).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantParams {
    /// Value step between adjacent codes; `0 < scale` always (degenerate
    /// constant vectors store `scale = 1.0` with all-zero codes).
    pub scale: f32,
    /// The value code 0 dequantizes to — the quantized range's midpoint.
    pub zero_point: f32,
    /// `Σ code[i]` over the vector, exact in i32.
    pub code_sum: i32,
}

impl QuantParams {
    /// Parameters of an all-zero vector (the empty-vector identity).
    pub const ZERO: QuantParams = QuantParams { scale: 1.0, zero_point: 0.0, code_sum: 0 };
}

/// Quantize `v`, appending `v.len()` codes to `codes` and returning the
/// per-vector parameters. Appending (rather than returning a fresh `Vec`)
/// lets an index build one contiguous code buffer per inverted list.
///
/// The value range `[min, max]` maps affinely onto codes `[-127, 127]`:
/// `scale = (max−min)/254`, `zero_point = (min+max)/2`, each element rounds
/// to the nearest code. A constant vector (or one whose range underflows
/// f32) stores `scale = 1.0` and all-zero codes, making the round trip
/// exact. Inputs must be finite (quantizing NaN/∞ is a caller bug; debug
/// builds assert).
pub fn quantize_into(v: &[f32], codes: &mut Vec<i8>) -> QuantParams {
    debug_assert!(v.iter().all(|x| x.is_finite()), "quantize: non-finite input");
    debug_assert!(v.len() <= MAX_DOT_I8_DIM, "quantize: vector too long for i32 scoring");
    if v.is_empty() {
        return QuantParams::ZERO;
    }
    let mut min = v[0];
    let mut max = v[0];
    for &x in &v[1..] {
        min = min.min(x);
        max = max.max(x);
    }
    let zero_point = min + (max - min) * 0.5;
    let scale = (max - min) / (2 * QUANT_CODE_MAX) as f32;
    // lint: allow(L005, exact zero is the degenerate-range sentinel: any positive scale, however tiny, still quantizes)
    if scale <= 0.0 {
        // Constant vector: code 0 everywhere dequantizes to exactly
        // `zero_point`, so the round trip has zero error.
        codes.extend(std::iter::repeat_n(0i8, v.len()));
        return QuantParams { scale: 1.0, zero_point, code_sum: 0 };
    }
    let mut code_sum = 0i32;
    codes.reserve(v.len());
    for &x in v {
        // Round in f64 so the nearest-code property (error ≤ scale/2) holds
        // bit-for-bit; `(x−mid)/scale ∈ [-127, 127]` by construction, the
        // clamp only guards f32→f64 rounding at the range endpoints.
        let c = ((x - zero_point) as f64 / scale as f64).round() as i32;
        let c = c.clamp(-QUANT_CODE_MAX, QUANT_CODE_MAX);
        code_sum += c;
        codes.push(c as i8);
    }
    QuantParams { scale, zero_point, code_sum }
}

/// [`quantize_into`] returning a fresh code vector.
pub fn quantize(v: &[f32]) -> (Vec<i8>, QuantParams) {
    let mut codes = Vec::with_capacity(v.len());
    let params = quantize_into(v, &mut codes);
    (codes, params)
}

/// Reconstruct the f32 vector a code sequence approximates:
/// `x̂[i] = zero_point + scale·code[i]`, within `scale/2` per element of the
/// original.
pub fn dequantize(codes: &[i8], params: &QuantParams) -> Vec<f32> {
    codes.iter().map(|&c| params.zero_point + params.scale * c as f32).collect()
}

/// Approximate inner product of two quantized vectors via the factored form
/// (module docs): one i32 code-dot through [`dot_i8`], the cross terms from
/// the precomputed code sums, one f32 combination at the end. This is the
/// single implementation of the combination — the 4-blocked scorer feeds
/// [`crate::kernel::dot4_i8`] results through [`combine_quantized`] so its
/// scores are bit-identical to this one-query path.
pub fn quantized_dot(a: &[i8], pa: &QuantParams, b: &[i8], pb: &QuantParams) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "quantized_dot: length mismatch");
    combine_quantized(dot_i8(a, b), pa, pb, a.len())
}

/// Combine an i32 code-dot with the two vectors' parameters into the f32
/// approximate inner product. Factored out of [`quantized_dot`] so blocked
/// scorers (which compute four code-dots per loaded vector) apply the exact
/// same combination arithmetic.
#[inline]
pub fn combine_quantized(code_dot: i32, pa: &QuantParams, pb: &QuantParams, dim: usize) -> f32 {
    (pa.scale * pb.scale) * code_dot as f32
        + (pa.scale * pb.zero_point) * pa.code_sum as f32
        + (pb.scale * pa.zero_point) * pb.code_sum as f32
        + (dim as f32) * pa.zero_point * pb.zero_point
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::dot4_i8;
    use crate::similarity::dot;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((x % 2001) as f32 - 1000.0) / 317.0
            })
            .collect()
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        for d in [1usize, 2, 7, 16, 33, 128] {
            let v = fill(d, d as u32);
            let (codes, p) = quantize(&v);
            let back = dequantize(&codes, &p);
            for (i, (&x, &y)) in v.iter().zip(&back).enumerate() {
                let err = (x as f64 - y as f64).abs();
                let bound = p.scale as f64 * 0.5 * (1.0 + 1e-6);
                assert!(err <= bound, "d={d} i={i}: |{x} - {y}| = {err} > {bound}");
            }
        }
    }

    #[test]
    fn constant_and_empty_vectors_round_trip_exactly() {
        let (codes, p) = quantize(&[]);
        assert!(codes.is_empty());
        assert_eq!(p, QuantParams::ZERO);
        for c in [0.0f32, 3.25, -7.5] {
            let v = vec![c; 9];
            let (codes, p) = quantize(&v);
            assert!(codes.iter().all(|&q| q == 0), "constant vector must code to zeros");
            assert_eq!(dequantize(&codes, &p), v, "constant round trip must be exact");
        }
    }

    #[test]
    fn codes_span_the_symmetric_range() {
        let v = fill(64, 5);
        let (codes, p) = quantize(&v);
        assert!(codes.iter().all(|&c| (-127..=127).contains(&(c as i32))));
        // The extremes map to the extreme codes.
        assert!(codes.iter().any(|&c| c as i32 == QUANT_CODE_MAX));
        assert!(codes.iter().any(|&c| c as i32 == -QUANT_CODE_MAX));
        assert_eq!(p.code_sum, codes.iter().map(|&c| c as i32).sum::<i32>());
    }

    #[test]
    fn quantized_dot_approximates_the_f32_dot() {
        for d in [8usize, 16, 64] {
            let a = fill(d, 11);
            let b = fill(d, 23);
            let (ca, pa) = quantize(&a);
            let (cb, pb) = quantize(&b);
            let approx = quantized_dot(&ca, &pa, &cb, &pb);
            let exact = dot(&a, &b);
            // Elementwise error ≤ scale/2 per side bounds the dot error by
            // d·(sa/2·‖b‖∞ + sb/2·‖a‖∞ + sa·sb/4); use a generous envelope.
            let amax = a.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let bmax = b.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let envelope =
                d as f32 * (pa.scale * bmax + pb.scale * amax + pa.scale * pb.scale) * 0.75;
            assert!(
                (approx - exact).abs() <= envelope,
                "d={d}: approx {approx} vs exact {exact} (envelope {envelope})"
            );
        }
    }

    #[test]
    fn quantized_dot_equals_dot_of_dequantized_vectors_closely() {
        // The factored form is algebraically the dot of the two dequantized
        // vectors; check they agree to f32 rounding.
        let a = fill(32, 41);
        let b = fill(32, 43);
        let (ca, pa) = quantize(&a);
        let (cb, pb) = quantize(&b);
        let factored = quantized_dot(&ca, &pa, &cb, &pb);
        let explicit = dot(&dequantize(&ca, &pa), &dequantize(&cb, &pb));
        assert!(
            (factored - explicit).abs() <= 1e-3 * (1.0 + explicit.abs()),
            "{factored} vs {explicit}"
        );
    }

    #[test]
    fn blocked_combination_is_bit_identical_to_single() {
        // dot4_i8 + combine_quantized (the list scorer's path) must produce
        // the exact bits of quantized_dot (the single-query path).
        let d = 48;
        let v = fill(d, 7);
        let (cv, pv) = quantize(&v);
        let qs: Vec<(Vec<i8>, QuantParams)> = (0..4).map(|s| quantize(&fill(d, 100 + s))).collect();
        let dots = dot4_i8(&cv, &qs[0].0, &qs[1].0, &qs[2].0, &qs[3].0);
        for (qi, (cq, pq)) in qs.iter().enumerate() {
            let blocked = combine_quantized(dots[qi], &pv, pq, d);
            let single = quantized_dot(&cv, &pv, cq, pq);
            assert_eq!(blocked.to_bits(), single.to_bits(), "q={qi}");
        }
    }
}
