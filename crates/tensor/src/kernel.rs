//! Blocked, parallel GEMM kernels for the dense f32 hot path.
//!
//! [`Matrix::matmul`](crate::Matrix::matmul) and
//! [`Matrix::matmul_bias`](crate::Matrix::matmul_bias) dispatch here. Three
//! layers, fastest applicable wins:
//!
//! 1. **Register-blocked micro-kernel** ([`gemm_serial`]): the output is
//!    tiled into `MR × NR` blocks whose partial sums live entirely in
//!    registers. For each tile the `k` loop runs once, broadcasting `MR`
//!    values of `a` against an `NR`-wide row slice of `b` — an 8-wide inner
//!    loop the compiler auto-vectorizes — so each output element is loaded
//!    and stored exactly once instead of once per `k` step (the naive `ikj`
//!    loop re-reads and re-writes the whole output row `k` times).
//! 2. **Fused bias**: the optional `bias` row is added as the tile is
//!    stored, replacing a second full pass over the output.
//! 3. **Row parallelism** ([`gemm`]): large outputs are split into disjoint
//!    horizontal bands, one per rayon worker. Threading changes *where* a
//!    row is computed, never the order of its reduction.
//!
//! # Determinism: bit-identical to the naive reference
//!
//! Every output element is the same sum in the same order in every layer:
//! `out[i][j] = Σ_k a[i][k]·b[k][j]` with `k` strictly ascending, then
//! `+ bias[j]` last. Tiling only regroups *independent* elements (different
//! `(i, j)` own different accumulators), and the parallel split assigns
//! whole rows to threads, so no floating-point reduction is ever reordered
//! or split. The one deliberate divergence from [`matmul_reference`] is the
//! dropped `a == 0.0` sparsity skip: adding `±0.0 · b` to a finite
//! accumulator is a bitwise no-op for finite `b` (a positive-zero
//! accumulator stays positive zero under round-to-nearest), so for finite
//! inputs — all this workspace produces; debug builds assert forward values
//! are finite — the kernels are bit-identical, as the proptest equivalence
//! suite verifies. No production call site feeds one-hot rows to `matmul`
//! (embedding lookups are table reads, not one-hot products), so the skip
//! survives only in the reference kernel below.

/// Rows per register tile: `a` values broadcast per `k` step.
pub const MR: usize = 4;
/// Columns per register tile: width of the auto-vectorized inner loop.
pub const NR: usize = 8;

/// Minimum multiply-accumulate count (`m·k·n`) before the row-parallel path
/// pays for thread spawn + output stitching. Training-step matmuls
/// (`1×d · d×d`, d ≤ 256) sit orders of magnitude below this and stay
/// single-threaded; only genuinely large serving batches cross it.
pub const PAR_MIN_MACS: usize = 1 << 21;

/// The seed's naive `ikj` kernel, kept verbatim as the semantic reference:
/// the proptest equivalence suite pins the blocked and parallel kernels to
/// its output bit-for-bit, and it retains the `a == 0.0` sparsity skip for
/// callers that really do stream sparse rows. `out` must hold `m·n` zeros.
pub fn matmul_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            // lint: allow(L005, exact zero skip is the sparsity fast path; any nonzero value, however tiny, must still be multiplied)
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// One `R × NR` register tile at `(i0, j0)`: the full-`k` reduction for
/// `R·NR` output elements, accumulated in registers, stored (plus bias)
/// exactly once. `R` is a const generic so each tile height compiles to a
/// fully unrolled kernel instead of a loop with a runtime trip count.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // a GEMM takes operands + full shape + tile origin
fn tile<const R: usize>(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    k: usize,
    n: usize,
    i0: usize,
    j0: usize,
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; R];
    // Row slices pinned to length `k` so the `[kk]` accesses below are
    // provably in bounds and the loop vectorizes without checks.
    let a_rows: [&[f32]; R] = std::array::from_fn(|r| &a[(i0 + r) * k..][..k]);
    for kk in 0..k {
        let b_row = &b[kk * n + j0..][..NR];
        for r in 0..R {
            let av = a_rows[r][kk];
            let acc_r = &mut acc[r];
            for j in 0..NR {
                acc_r[j] += av * b_row[j];
            }
        }
    }
    for r in 0..R {
        let out_row = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR];
        match bias {
            Some(bias) => {
                let b_seg = &bias[j0..j0 + NR];
                for j in 0..NR {
                    out_row[j] = acc[r][j] + b_seg[j];
                }
            }
            None => out_row.copy_from_slice(&acc[r]),
        }
    }
}

/// Column tail (`n % NR` rightmost columns) for one row: plain single
/// accumulators, `k` ascending — the same per-element order as the tiles.
#[inline]
#[allow(clippy::too_many_arguments)] // a GEMM takes operands + full shape + tail origin
fn tail_cols(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    k: usize,
    n: usize,
    i: usize,
    j0: usize,
    out: &mut [f32],
) {
    for j in j0..n {
        let mut acc = 0.0f32;
        for kk in 0..k {
            acc += a[i * k + kk] * b[kk * n + j];
        }
        if let Some(bias) = bias {
            acc += bias[j];
        }
        out[i * n + j] = acc;
    }
}

/// Single-threaded blocked GEMM with optionally fused bias:
/// `out = a·b (+ bias per row)`, shapes `m×k · k×n`, all row-major.
///
/// Overwrites `out` completely (no zeroing needed). Bit-identical to
/// [`matmul_reference`] followed by a bias pass, for finite inputs.
pub fn gemm_serial(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(bias.is_none_or(|bv| bv.len() == n));
    let n_tiled = n - n % NR;
    let mut i0 = 0;
    while i0 < m {
        let rows = (m - i0).min(MR);
        let mut j0 = 0;
        while j0 < n_tiled {
            match rows {
                1 => tile::<1>(a, b, bias, k, n, i0, j0, out),
                2 => tile::<2>(a, b, bias, k, n, i0, j0, out),
                3 => tile::<3>(a, b, bias, k, n, i0, j0, out),
                _ => tile::<4>(a, b, bias, k, n, i0, j0, out),
            }
            j0 += NR;
        }
        if n_tiled < n {
            for r in 0..rows {
                tail_cols(a, b, bias, k, n, i0 + r, n_tiled, out);
            }
        }
        i0 += rows;
    }
}

/// Blocked GEMM over an explicit number of disjoint row bands — the
/// parallel split, exposed so tests can force multi-band execution on any
/// machine. Each band is a contiguous block of whole output rows computed
/// by [`gemm_serial`], so per-row reductions are untouched.
#[allow(clippy::too_many_arguments)] // a GEMM takes operands + full shape + band count
pub fn gemm_banded(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    bands: usize,
) {
    use rayon::prelude::*;
    let bands = bands.clamp(1, m.max(1));
    if bands <= 1 || n == 0 {
        gemm_serial(a, b, bias, m, k, n, out);
        return;
    }
    let rows_per = m.div_ceil(bands);
    let tasks: Vec<(usize, &mut [f32])> = out.chunks_mut(rows_per * n).enumerate().collect();
    tasks.into_par_iter().for_each(|(band, out_band)| {
        let i0 = band * rows_per;
        let rows = out_band.len() / n;
        gemm_serial(&a[i0 * k..(i0 + rows) * k], b, bias, rows, k, n, out_band);
    });
}

/// Chunk width of the i8 dot kernels. The products of two i8 codes are
/// bounded by `127² = 16129 < i16::MAX`, so the inner loop multiplies in
/// i16 and widens only the *product* to i32 — the shape compilers turn into
/// widening multiply-accumulate SIMD (`pmaddwd`-style). Thirty-two codes
/// fill two 128-bit registers of i16 products per iteration; a second
/// 16-wide pass catches short vectors (the workspace's embeddings are 16
/// wide) before the scalar tail.
pub const DOT_I8_LANES: usize = 32;

/// Longest vector [`dot_i8`] accepts without risking i32 overflow: every
/// elementwise product is bounded by `127²`, so `d` of them sum to at most
/// `d · 16129`, which must stay under `i32::MAX`. Quantized embeddings in
/// this workspace are ≤ 256 wide — five orders of magnitude of headroom —
/// but the bound is a checked contract (debug assert), not an assumption.
pub const MAX_DOT_I8_DIM: usize = (i32::MAX as usize) / (127 * 127);

/// One `N`-wide block of the i16-widening multiply-accumulate. `N` is a
/// const generic so the 32- and 16-wide passes share one definition the
/// compiler fully unrolls and vectorizes at each width.
#[inline]
fn dot_i8_block<const N: usize>(xa: &[i8], xb: &[i8]) -> i32 {
    let mut s = 0i32;
    for j in 0..N {
        s += (xa[j] as i16 * xb[j] as i16) as i32;
    }
    s
}

/// Integer dot product of two equal-length i8 code vectors, accumulated in
/// i32. Integer addition is associative, so unlike the f32 `dot` the block
/// scheme cannot change the *value* — it exists purely so the loop
/// vectorizes: [`DOT_I8_LANES`]-wide i16-multiply blocks, a 16-wide pass
/// for the mid tail, then scalar. Exact equality with [`dot_i8_reference`]
/// is pinned by tests across lengths, so any restructuring stays honest.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot_i8: length mismatch");
    debug_assert!(a.len() <= MAX_DOT_I8_DIM, "dot_i8: vector too long for i32 accumulation");
    let mut acc = 0i32;
    let mut ca = a.chunks_exact(DOT_I8_LANES);
    let mut cb = b.chunks_exact(DOT_I8_LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        acc += dot_i8_block::<DOT_I8_LANES>(xa, xb);
    }
    let mut ra = ca.remainder().chunks_exact(16);
    let mut rb = cb.remainder().chunks_exact(16);
    for (xa, xb) in (&mut ra).zip(&mut rb) {
        acc += dot_i8_block::<16>(xa, xb);
    }
    for (&x, &y) in ra.remainder().iter().zip(rb.remainder()) {
        acc += (x as i16 * y as i16) as i32;
    }
    acc
}

/// Four integer dot products of one shared code vector `v` against four
/// query code vectors — `dot4_i8(v, ..)[i]` is bit-identical to
/// `dot_i8(v, q_i)`. This is the quantized IVF scorer's kernel, the i8
/// counterpart of `similarity::dot4` — but unlike the f32 case, measurement
/// (examples/qdot_probe) showed four independent [`dot_i8`] passes beat
/// every hand-interleaved shared-`v` scheme at dims 16–256: the widening
/// i16-multiply loop vectorizes perfectly per stream, and interleaving four
/// streams defeats it. So the "kernel" is just the loop the compiler
/// already wins on, kept as a named entry point so the scorer's call shape
/// (and the bit-identity pin against `dot_i8`) survive future tuning.
#[inline]
pub fn dot4_i8(v: &[i8], q0: &[i8], q1: &[i8], q2: &[i8], q3: &[i8]) -> [i32; 4] {
    let d = v.len();
    debug_assert!(
        q0.len() == d && q1.len() == d && q2.len() == d && q3.len() == d,
        "dot4_i8: length mismatch"
    );
    debug_assert!(d <= MAX_DOT_I8_DIM, "dot4_i8: vector too long for i32 accumulation");
    [dot_i8(v, q0), dot_i8(v, q1), dot_i8(v, q2), dot_i8(v, q3)]
}

/// The scalar sequential i8 dot, kept as the semantic reference the blocked
/// [`dot_i8`] / [`dot4_i8`] kernels are pinned against (exact equality —
/// integer accumulation has no re-association slack to tolerate).
#[inline]
pub fn dot_i8_reference(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot_i8: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// Hardware thread count, resolved once per process:
/// `available_parallelism` is a syscall (~µs) — comparable to an entire
/// small GEMM — far too expensive for a per-dispatch check.
pub fn hardware_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// Top-level GEMM dispatch: serial blocked kernel for small work, row-banded
/// parallel execution once `m·k·n` crosses [`PAR_MIN_MACS`] and more than
/// one hardware thread is available.
pub fn gemm(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let threads = hardware_threads();
    let macs = m.saturating_mul(k).saturating_mul(n);
    if threads > 1 && macs >= PAR_MIN_MACS && m >= 2 {
        gemm_banded(a, b, bias, m, k, n, out, threads.min(m));
    } else {
        gemm_serial(a, b, bias, m, k, n, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_with_bias(
        a: &[f32],
        b: &[f32],
        bias: Option<&[f32]>,
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        matmul_reference(a, b, m, k, n, &mut out);
        if let Some(bias) = bias {
            for row in out.chunks_exact_mut(n.max(1)) {
                for (o, &bv) in row.iter_mut().zip(bias) {
                    *o += bv;
                }
            }
        }
        out
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Deterministic values with zeros and negatives mixed in.
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                match x % 7 {
                    0 => 0.0,
                    _ => ((x % 1000) as f32 - 500.0) / 250.0,
                }
            })
            .collect()
    }

    #[test]
    fn blocked_matches_reference_across_shapes() {
        for &(m, k, n) in &[
            (0, 3, 4),
            (1, 1, 1),
            (1, 0, 5),
            (3, 7, 1),
            (4, 8, 8),
            (5, 9, 11),
            (13, 17, 19),
            (16, 32, 16),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let bias = fill(n, 3);
            for maybe_bias in [None, Some(bias.as_slice())] {
                let expect = reference_with_bias(&a, &b, maybe_bias, m, k, n);
                let mut got = vec![f32::NAN; m * n];
                gemm_serial(&a, &b, maybe_bias, m, k, n, &mut got);
                assert_eq!(
                    expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "shape {m}x{k}x{n} bias={}",
                    maybe_bias.is_some()
                );
            }
        }
    }

    #[test]
    fn banded_split_matches_reference() {
        let (m, k, n) = (11, 6, 9);
        let a = fill(m * k, 4);
        let b = fill(k * n, 5);
        let expect = reference_with_bias(&a, &b, None, m, k, n);
        for bands in [1, 2, 3, 5, 11, 64] {
            let mut got = vec![f32::NAN; m * n];
            gemm_banded(&a, &b, None, m, k, n, &mut got, bands);
            assert_eq!(
                expect.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "bands={bands}"
            );
        }
    }

    #[test]
    fn zero_n_and_zero_m_are_fine() {
        let mut out: Vec<f32> = Vec::new();
        gemm(&[], &[0.0; 12], None, 0, 4, 3, &mut out);
        gemm(&[1.0, 2.0], &[], None, 2, 1, 0, &mut out);
        gemm_banded(&[], &[], None, 0, 0, 0, &mut out, 4);
    }

    fn fill_i8(len: usize, seed: u32) -> Vec<i8> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2246822519).wrapping_add(seed);
                ((x % 255) as i32 - 127) as i8
            })
            .collect()
    }

    #[test]
    fn dot_i8_matches_reference_exactly_across_lengths() {
        for d in [0usize, 1, 3, 7, 15, 16, 17, 31, 32, 33, 64, 100, 256] {
            let a = fill_i8(d, 1);
            let b = fill_i8(d, 2);
            assert_eq!(dot_i8(&a, &b), dot_i8_reference(&a, &b), "d={d}");
        }
    }

    #[test]
    fn dot4_i8_is_identical_to_dot_i8_per_query() {
        for d in [0usize, 1, 5, 15, 16, 17, 29, 64, 100] {
            let v = fill_i8(d, 3);
            let qs: Vec<Vec<i8>> = (0..4).map(|q| fill_i8(d, 10 + q)).collect();
            let got = dot4_i8(&v, &qs[0], &qs[1], &qs[2], &qs[3]);
            for (qi, q) in qs.iter().enumerate() {
                assert_eq!(got[qi], dot_i8(&v, q), "d={d} q={qi}");
            }
        }
    }

    #[test]
    fn dot_i8_extremes_stay_in_i32() {
        // Saturated codes at the documented max length: the worst case the
        // contract admits must not overflow (ci profile enables
        // overflow-checks, so this would abort rather than wrap).
        let d = 4096;
        let a = vec![127i8; d];
        let b = vec![-127i8; d];
        assert_eq!(dot_i8(&a, &b), -(127 * 127) * d as i32);
        assert!(d <= MAX_DOT_I8_DIM);
    }

    #[test]
    fn k_zero_writes_bias_or_zero() {
        let mut out = vec![f32::NAN; 6];
        gemm_serial(&[], &[], None, 2, 0, 3, &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
        let mut out = vec![f32::NAN; 6];
        gemm_serial(&[], &[], Some(&[1.0, 2.0, 3.0]), 2, 0, 3, &mut out);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }
}
