//! Similarity kernels, including the paper's focal-relevance kernel (eq. 5).

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn l2_norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in `[-1, 1]`; returns 0 if either vector is all-zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// The paper's focal-relevance score (eq. 5), a continuous Tanimoto
/// coefficient:
///
/// ```text
/// e = (Fc · Fj) / (‖Fc‖² + ‖Fj‖² − Fc · Fj)
/// ```
///
/// Larger when `f_j` is more relevant (closer, in both direction and
/// magnitude) to the focal vector `f_c`. For two all-zero vectors the
/// denominator vanishes; we define the score as 0 there (no evidence of
/// relevance).
pub fn tanimoto_similarity(f_c: &[f32], f_j: &[f32]) -> f32 {
    let d = dot(f_c, f_j);
    let denom = dot(f_c, f_c) + dot(f_j, f_j) - d;
    if denom.abs() <= f32::EPSILON {
        0.0
    } else {
        d / denom
    }
}

/// Jaccard similarity of two sets represented as sorted, deduplicated slices.
///
/// Used by the graph builder to weight similarity-based edges from MinHash
/// signatures (the exact version, for testing MinHash's estimate against).
pub fn jaccard_exact(a: &[u64], b: &[u64]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "jaccard_exact: `a` must be sorted+dedup");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "jaccard_exact: `b` must be sorted+dedup");
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (a.len() + b.len() - inter) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_basics() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_identical_is_one() {
        let v = [0.3, -0.7, 2.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        let v = [1.0, 2.0];
        let w = [-1.0, -2.0];
        assert!((cosine_similarity(&v, &w) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 5.0]).abs() < 1e-7);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn tanimoto_identical_is_one() {
        let v = [1.0, 2.0, 3.0];
        assert!((tanimoto_similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanimoto_orders_by_relevance() {
        // A vector aligned with the focal should score higher than an
        // orthogonal one, which should score higher than an opposed one.
        let focal = [1.0, 0.0];
        let aligned = [0.9, 0.1];
        let ortho = [0.0, 1.0];
        let opposed = [-1.0, 0.0];
        let s_a = tanimoto_similarity(&focal, &aligned);
        let s_o = tanimoto_similarity(&focal, &ortho);
        let s_n = tanimoto_similarity(&focal, &opposed);
        assert!(s_a > s_o && s_o > s_n, "{s_a} {s_o} {s_n}");
    }

    #[test]
    fn tanimoto_zero_vectors_defined() {
        assert_eq!(tanimoto_similarity(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn tanimoto_penalizes_magnitude_mismatch() {
        // Unlike cosine, Tanimoto is sensitive to magnitude: a scaled copy
        // scores below 1.
        let v = [1.0, 1.0];
        let w = [10.0, 10.0];
        assert!((cosine_similarity(&v, &w) - 1.0).abs() < 1e-6);
        assert!(tanimoto_similarity(&v, &w) < 0.5);
    }

    #[test]
    fn jaccard_exact_basics() {
        assert_eq!(jaccard_exact(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard_exact(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard_exact(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-9);
        assert_eq!(jaccard_exact(&[], &[]), 0.0);
    }
}
