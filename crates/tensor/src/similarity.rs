//! Similarity kernels, including the paper's focal-relevance kernel (eq. 5).
//!
//! [`dot`] is the one dot-product implementation in the workspace:
//! `cosine_similarity`, `tanimoto_similarity`, the frozen model's edge
//! attention, and the IVF scorer all route through it (or through [`dot4`],
//! which applies the identical lane scheme to four queries at once, so a
//! vector scored inside a 4-query block gets bit-for-bit the same value as
//! one scored alone).

/// Accumulator lanes of the unrolled [`dot`]: element `i` feeds lane
/// `i % DOT_LANES`, and the lanes collapse through a fixed pairwise tree.
/// One scalar accumulator chains every `x·y + s` through a single register,
/// serializing the loop on FMA latency; eight independent lanes let the
/// compiler vectorize and keep the pipeline full.
pub const DOT_LANES: usize = 8;

#[inline]
fn reduce_lanes(acc: [f32; DOT_LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Dot product of two equal-length slices, unrolled over [`DOT_LANES`]
/// independent accumulators.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = [0.0f32; DOT_LANES];
    let mut ca = a.chunks_exact(DOT_LANES);
    let mut cb = b.chunks_exact(DOT_LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..DOT_LANES {
            acc[j] += xa[j] * xb[j];
        }
    }
    for (j, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        acc[j] += x * y;
    }
    reduce_lanes(acc)
}

/// Four dot products of one shared vector `v` against four queries, with
/// each of the four sums accumulated by exactly the [`dot`] lane scheme —
/// `dot4(v, ..)[i]` is bit-identical to `dot(v, q_i)` — while `v` is loaded
/// from memory once instead of four times. This is the IVF batch scorer's
/// kernel: a single query's dot is bound by the add-latency chain; four
/// independent chains per loaded element fill the pipeline.
#[inline]
pub fn dot4(v: &[f32], q0: &[f32], q1: &[f32], q2: &[f32], q3: &[f32]) -> [f32; 4] {
    let d = v.len();
    debug_assert!(
        q0.len() == d && q1.len() == d && q2.len() == d && q3.len() == d,
        "dot4: length mismatch"
    );
    let mut acc = [[0.0f32; DOT_LANES]; 4];
    let mut i = 0;
    while i + DOT_LANES <= d {
        let xv = &v[i..i + DOT_LANES];
        let (x0, x1) = (&q0[i..i + DOT_LANES], &q1[i..i + DOT_LANES]);
        let (x2, x3) = (&q2[i..i + DOT_LANES], &q3[i..i + DOT_LANES]);
        for j in 0..DOT_LANES {
            let x = xv[j];
            acc[0][j] += x * x0[j];
            acc[1][j] += x * x1[j];
            acc[2][j] += x * x2[j];
            acc[3][j] += x * x3[j];
        }
        i += DOT_LANES;
    }
    for j in 0..(d - i) {
        let x = v[i + j];
        acc[0][j] += x * q0[i + j];
        acc[1][j] += x * q1[i + j];
        acc[2][j] += x * q2[i + j];
        acc[3][j] += x * q3[i + j];
    }
    [reduce_lanes(acc[0]), reduce_lanes(acc[1]), reduce_lanes(acc[2]), reduce_lanes(acc[3])]
}

/// The seed's scalar sequential dot, kept as the oracle the unrolled
/// [`dot`] is benchmarked against (the *values* may differ in the last ulp:
/// re-associating a float sum is the one place this PR trades bit-equality
/// for speed, and every consumer of `dot` tolerates it).
#[inline]
pub fn dot_reference(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn l2_norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in `[-1, 1]`; returns 0 if either vector is all-zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// The paper's focal-relevance score (eq. 5), a continuous Tanimoto
/// coefficient:
///
/// ```text
/// e = (Fc · Fj) / (‖Fc‖² + ‖Fj‖² − Fc · Fj)
/// ```
///
/// Larger when `f_j` is more relevant (closer, in both direction and
/// magnitude) to the focal vector `f_c`. For two all-zero vectors the
/// denominator vanishes; we define the score as 0 there (no evidence of
/// relevance).
pub fn tanimoto_similarity(f_c: &[f32], f_j: &[f32]) -> f32 {
    let d = dot(f_c, f_j);
    let denom = dot(f_c, f_c) + dot(f_j, f_j) - d;
    if denom.abs() <= f32::EPSILON {
        0.0
    } else {
        d / denom
    }
}

/// Jaccard similarity of two sets represented as sorted, deduplicated slices.
///
/// Used by the graph builder to weight similarity-based edges from MinHash
/// signatures (the exact version, for testing MinHash's estimate against).
pub fn jaccard_exact(a: &[u64], b: &[u64]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "jaccard_exact: `a` must be sorted+dedup");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "jaccard_exact: `b` must be sorted+dedup");
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (a.len() + b.len() - inter) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_basics() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn dot_matches_reference_closely_across_lengths() {
        // Exact on lengths below one lane block (single-lane order matches
        // the scalar loop), and within re-association tolerance above.
        for d in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
            let a: Vec<f32> = (0..d).map(|i| ((i * 37 % 19) as f32 - 9.0) / 7.0).collect();
            let b: Vec<f32> = (0..d).map(|i| ((i * 53 % 23) as f32 - 11.0) / 5.0).collect();
            let got = dot(&a, &b);
            let want = dot_reference(&a, &b);
            assert!((got - want).abs() <= 1e-4 * (1.0 + want.abs()), "d={d}: {got} vs {want}");
        }
    }

    #[test]
    fn dot4_is_bitwise_dot_per_query() {
        for d in [0usize, 1, 5, 8, 13, 16, 29, 64] {
            let v: Vec<f32> = (0..d).map(|i| ((i * 31 % 17) as f32 - 8.0) / 3.0).collect();
            let qs: Vec<Vec<f32>> = (0..4)
                .map(|q| (0..d).map(|i| ((i * 41 + q * 7) % 13) as f32 - 6.0).collect())
                .collect();
            let got = dot4(&v, &qs[0], &qs[1], &qs[2], &qs[3]);
            for (qi, q) in qs.iter().enumerate() {
                assert_eq!(
                    got[qi].to_bits(),
                    dot(&v, q).to_bits(),
                    "d={d} q={qi}: dot4 diverges from dot"
                );
            }
        }
    }

    #[test]
    fn cosine_identical_is_one() {
        let v = [0.3, -0.7, 2.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        let v = [1.0, 2.0];
        let w = [-1.0, -2.0];
        assert!((cosine_similarity(&v, &w) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 5.0]).abs() < 1e-7);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn tanimoto_identical_is_one() {
        let v = [1.0, 2.0, 3.0];
        assert!((tanimoto_similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanimoto_orders_by_relevance() {
        // A vector aligned with the focal should score higher than an
        // orthogonal one, which should score higher than an opposed one.
        let focal = [1.0, 0.0];
        let aligned = [0.9, 0.1];
        let ortho = [0.0, 1.0];
        let opposed = [-1.0, 0.0];
        let s_a = tanimoto_similarity(&focal, &aligned);
        let s_o = tanimoto_similarity(&focal, &ortho);
        let s_n = tanimoto_similarity(&focal, &opposed);
        assert!(s_a > s_o && s_o > s_n, "{s_a} {s_o} {s_n}");
    }

    #[test]
    fn tanimoto_zero_vectors_defined() {
        assert_eq!(tanimoto_similarity(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn tanimoto_penalizes_magnitude_mismatch() {
        // Unlike cosine, Tanimoto is sensitive to magnitude: a scaled copy
        // scores below 1.
        let v = [1.0, 1.0];
        let w = [10.0, 10.0];
        assert!((cosine_similarity(&v, &w) - 1.0).abs() < 1e-6);
        assert!(tanimoto_similarity(&v, &w) < 0.5);
    }

    #[test]
    fn jaccard_exact_basics() {
        assert_eq!(jaccard_exact(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard_exact(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard_exact(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-9);
        assert_eq!(jaccard_exact(&[], &[]), 0.0);
    }
}
