//! Numerically stable activations and reductions.

/// Logistic sigmoid, computed in a branch that avoids `exp` overflow for
/// large-magnitude inputs.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Leaky ReLU with the conventional 0.01 negative slope used by GAT-style
/// attention scores (paper eq. (3) / eq. (8)).
#[inline]
pub fn leaky_relu(x: f32) -> f32 {
    if x >= 0.0 {
        x
    } else {
        0.01 * x
    }
}

/// Derivative of [`leaky_relu`].
#[inline]
pub fn leaky_relu_grad(x: f32) -> f32 {
    if x >= 0.0 {
        1.0
    } else {
        0.01
    }
}

/// Max-shifted softmax over a slice, returning a fresh vector.
///
/// An empty slice yields an empty vector. A slice of identical values yields
/// the uniform distribution.
pub fn stable_softmax(xs: &[f32]) -> Vec<f32> {
    let mut out = xs.to_vec();
    softmax_inplace(&mut out);
    out
}

/// Max-shifted softmax, in place.
pub fn softmax_inplace(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    } else {
        // All inputs were -inf; fall back to uniform.
        let u = 1.0 / xs.len() as f32;
        for x in xs.iter_mut() {
            *x = u;
        }
    }
}

/// Max-shifted log-sum-exp.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Binary cross-entropy on a probability, clamped away from {0,1} for
/// finiteness.
#[inline]
pub fn binary_cross_entropy(p: f32, label: f32) -> f32 {
    let p = p.clamp(1e-7, 1.0 - 1e-7);
    -(label * p.ln() + (1.0 - label) * (1.0 - p).ln())
}

/// Focal binary cross-entropy (Lin et al.) with focusing parameter `gamma`.
///
/// The paper trains Zoomer with a "focal cross-entropy loss" with focal
/// weight 2; this is the standard focal loss with γ = 2, which down-weights
/// easy examples so training concentrates on the hard, informative ones.
#[inline]
pub fn focal_cross_entropy(p: f32, label: f32, gamma: f32) -> f32 {
    let p = p.clamp(1e-7, 1.0 - 1e-7);
    let pt = if label > 0.5 { p } else { 1.0 - p };
    -(1.0 - pt).powf(gamma) * pt.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        for &x in &[-3.0, -0.5, 0.5, 3.0] {
            let s = sigmoid(x);
            assert!(s > 0.0 && s < 1.0, "sigmoid({x}) = {s}");
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
        // For |x| ≥ ~17, f32 rounds to the saturation value but stays in [0,1].
        assert!((0.0..=1.0).contains(&sigmoid(50.0)));
        assert!((0.0..=1.0).contains(&sigmoid(-50.0)));
    }

    #[test]
    fn sigmoid_extreme_inputs_finite() {
        assert!(sigmoid(1e9).is_finite());
        assert!(sigmoid(-1e9).is_finite());
        assert!(sigmoid(1e9) > 0.999_999);
        assert!(sigmoid(-1e9) < 1e-6);
    }

    #[test]
    fn leaky_relu_slopes() {
        assert_eq!(leaky_relu(2.0), 2.0);
        assert!((leaky_relu(-2.0) + 0.02).abs() < 1e-7);
        assert_eq!(leaky_relu_grad(1.0), 1.0);
        assert_eq!(leaky_relu_grad(-1.0), 0.01);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = stable_softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_shift_invariance() {
        let a = stable_softmax(&[1.0, 2.0, 3.0]);
        let b = stable_softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_huge_values_no_nan() {
        let p = stable_softmax(&[1e30, 1e30, -1e30]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_and_singleton() {
        assert!(stable_softmax(&[]).is_empty());
        assert_eq!(stable_softmax(&[42.0]), vec![1.0]);
    }

    #[test]
    fn softmax_all_neg_inf_uniform() {
        let p = stable_softmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert!((p[0] - 0.5).abs() < 1e-6 && (p[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lse_matches_naive_on_small_values() {
        let xs = [0.1f32, 0.5, -0.3];
        let naive = xs.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-6);
    }

    #[test]
    fn lse_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn bce_at_confident_correct_is_small() {
        assert!(binary_cross_entropy(0.999, 1.0) < 0.01);
        assert!(binary_cross_entropy(0.001, 0.0) < 0.01);
        assert!(binary_cross_entropy(0.001, 1.0) > 5.0);
    }

    #[test]
    fn bce_finite_at_exact_zero_one() {
        assert!(binary_cross_entropy(0.0, 1.0).is_finite());
        assert!(binary_cross_entropy(1.0, 0.0).is_finite());
    }

    #[test]
    fn focal_downweights_easy_examples() {
        // Easy example: p close to label. Focal loss should be much smaller
        // than plain BCE; hard examples should stay comparable.
        let easy_bce = binary_cross_entropy(0.9, 1.0);
        let easy_focal = focal_cross_entropy(0.9, 1.0, 2.0);
        assert!(easy_focal < 0.05 * easy_bce + 1e-3);
        let hard_bce = binary_cross_entropy(0.1, 1.0);
        let hard_focal = focal_cross_entropy(0.1, 1.0, 2.0);
        assert!(hard_focal > 0.5 * hard_bce);
    }

    #[test]
    fn focal_gamma_zero_is_bce() {
        let p = 0.3;
        assert!((focal_cross_entropy(p, 1.0, 0.0) - binary_cross_entropy(p, 1.0)).abs() < 1e-6);
    }
}
