//! Evaluation metrics used in the paper: AUC, MAE, RMSE, HitRate@K (plus
//! NDCG@K for completeness).
//!
//! Accumulation is done in `f64`; inputs are `f32` predictions/labels.

/// Area under the ROC curve, computed exactly via the rank-sum (Mann–Whitney)
/// formulation with average ranks for ties.
///
/// Returns 0.5 when one class is absent (no ranking information).
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc: length mismatch");
    let n = scores.len();
    if n == 0 {
        return 0.5;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));

    let mut rank_sum_pos = 0.0f64;
    let mut n_pos = 0u64;
    let mut i = 0usize;
    while i < n {
        // Find the tie group [i, j).
        let mut j = i + 1;
        while j < n && scores[idx[j]] == scores[idx[i]] {
            j += 1;
        }
        // Average rank of the group, 1-based.
        let avg_rank = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            if labels[k] > 0.5 {
                rank_sum_pos += avg_rank;
                n_pos += 1;
            }
        }
        i = j;
    }
    let n_neg = n as u64 - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    (rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Mean absolute error.
pub fn mae(preds: &[f32], targets: &[f32]) -> f64 {
    assert_eq!(preds.len(), targets.len(), "mae: length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    preds.iter().zip(targets.iter()).map(|(&p, &t)| (p as f64 - t as f64).abs()).sum::<f64>()
        / preds.len() as f64
}

/// Root mean squared error.
pub fn rmse(preds: &[f32], targets: &[f32]) -> f64 {
    assert_eq!(preds.len(), targets.len(), "rmse: length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    (preds
        .iter()
        .zip(targets.iter())
        .map(|(&p, &t)| {
            let d = p as f64 - t as f64;
            d * d
        })
        .sum::<f64>()
        / preds.len() as f64)
        .sqrt()
}

/// HitRate@K as the paper defines it: the fraction of test interactions whose
/// clicked item appears in the model's top-K retrieved list.
///
/// `retrieved` is the ranked list of item ids for one request; `clicked` is
/// the ground-truth item. Callers average the 0/1 outcomes across requests.
pub fn hit_at_k(retrieved: &[u64], clicked: u64, k: usize) -> bool {
    retrieved.iter().take(k).any(|&r| r == clicked)
}

/// Average HitRate@K over a batch of (ranked list, clicked item) pairs.
pub fn hit_rate_at_k(requests: &[(Vec<u64>, u64)], k: usize) -> f64 {
    if requests.is_empty() {
        return 0.0;
    }
    let hits =
        requests.iter().filter(|(retrieved, clicked)| hit_at_k(retrieved, *clicked, k)).count();
    hits as f64 / requests.len() as f64
}

/// NDCG@K for a single request with one relevant item: `1/log2(rank+1)` if
/// the item is in the top-K, else 0.
pub fn ndcg_at_k(retrieved: &[u64], clicked: u64, k: usize) -> f64 {
    retrieved
        .iter()
        .take(k)
        .position(|&r| r == clicked)
        .map(|pos| 1.0 / ((pos as f64 + 2.0).log2()))
        .unwrap_or(0.0)
}

/// Mean reciprocal rank over a batch of (ranked list, clicked item) pairs:
/// `1/rank` of the clicked item (0 when absent), averaged.
pub fn mean_reciprocal_rank(requests: &[(Vec<u64>, u64)]) -> f64 {
    if requests.is_empty() {
        return 0.0;
    }
    requests
        .iter()
        .map(|(retrieved, clicked)| {
            retrieved
                .iter()
                .position(|&r| r == *clicked)
                .map(|pos| 1.0 / (pos as f64 + 1.0))
                .unwrap_or(0.0)
        })
        .sum::<f64>()
        / requests.len() as f64
}

/// Running binary-classification metric accumulator used by the trainer:
/// collects (score, label) pairs and reports AUC / loss summaries.
#[derive(Default, Clone)]
pub struct BinaryMetrics {
    scores: Vec<f32>,
    labels: Vec<f32>,
    loss_sum: f64,
    loss_count: u64,
}

impl BinaryMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, score: f32, label: f32) {
        self.scores.push(score);
        self.labels.push(label);
    }

    pub fn push_loss(&mut self, loss: f32) {
        self.loss_sum += loss as f64;
        self.loss_count += 1;
    }

    pub fn len(&self) -> usize {
        self.scores.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    pub fn auc(&self) -> f64 {
        auc(&self.scores, &self.labels)
    }

    pub fn mean_loss(&self) -> f64 {
        if self.loss_count == 0 {
            0.0
        } else {
            self.loss_sum / self.loss_count as f64
        }
    }

    pub fn mae(&self) -> f64 {
        mae(&self.scores, &self.labels)
    }

    pub fn rmse(&self) -> f64 {
        rmse(&self.scores, &self.labels)
    }

    /// Merge another accumulator (used when workers evaluate shards in
    /// parallel).
    pub fn merge(&mut self, other: &BinaryMetrics) {
        self.scores.extend_from_slice(&other.scores);
        self.labels.extend_from_slice(&other.labels);
        self.loss_sum += other.loss_sum;
        self.loss_count += other.loss_count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_inverted_ranking() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!(auc(&scores, &labels).abs() < 1e-9);
    }

    #[test]
    fn auc_random_is_half() {
        // A single tie group: every pair is a tie → AUC 0.5 by average rank.
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [1.0, 0.0, 1.0, 0.0];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_with_partial_ties() {
        // pos at 0.8, neg at 0.8 (tie), pos at 0.9, neg at 0.1.
        // Pairs: (0.9 vs 0.8)=win, (0.9 vs 0.1)=win, (0.8 vs 0.8)=0.5,
        // (0.8 vs 0.1)=win → (3 + 0.5)/4 = 0.875.
        let scores = [0.9, 0.8, 0.8, 0.1];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels) - 0.875).abs() < 1e-9);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(auc(&[0.3, 0.7], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn mae_rmse_known_values() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 1.0, 5.0];
        assert!((mae(&p, &t) - 1.0).abs() < 1e-9);
        assert!((rmse(&p, &t) - (5.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn hitrate_counts_topk_membership() {
        let reqs = vec![
            (vec![5, 4, 3, 2, 1], 4u64),  // hit at rank 2
            (vec![5, 4, 3, 2, 1], 1u64),  // hit only at rank 5
            (vec![5, 4, 3, 2, 1], 99u64), // miss
        ];
        assert!((hit_rate_at_k(&reqs, 2) - 1.0 / 3.0).abs() < 1e-9);
        assert!((hit_rate_at_k(&reqs, 5) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(hit_rate_at_k(&[], 5), 0.0);
    }

    #[test]
    fn ndcg_rank_discount() {
        assert!((ndcg_at_k(&[7, 8, 9], 7, 3) - 1.0).abs() < 1e-9);
        assert!((ndcg_at_k(&[8, 7, 9], 7, 3) - 1.0 / 3.0f64.log2()).abs() < 1e-9);
        assert_eq!(ndcg_at_k(&[8, 9], 7, 2), 0.0);
    }

    #[test]
    fn mrr_known_values() {
        let reqs = vec![
            (vec![7, 8, 9], 7u64), // rank 1 → 1.0
            (vec![8, 7, 9], 7u64), // rank 2 → 0.5
            (vec![8, 9], 7u64),    // absent → 0.0
        ];
        assert!((mean_reciprocal_rank(&reqs) - 0.5).abs() < 1e-9);
        assert_eq!(mean_reciprocal_rank(&[]), 0.0);
    }

    #[test]
    fn binary_metrics_merge_equals_combined() {
        let mut a = BinaryMetrics::new();
        let mut b = BinaryMetrics::new();
        let mut all = BinaryMetrics::new();
        for (i, (s, l)) in [(0.9, 1.0), (0.1, 0.0), (0.6, 1.0), (0.4, 0.0)].iter().enumerate() {
            if i % 2 == 0 {
                a.push(*s, *l);
            } else {
                b.push(*s, *l);
            }
            all.push(*s, *l);
        }
        a.merge(&b);
        assert!((a.auc() - all.auc()).abs() < 1e-12);
    }
}
