//! A minimal row-major dense `f32` matrix.
//!
//! The GNN stack in this workspace only needs a handful of dense operations
//! (matmul, transpose, elementwise arithmetic, row views); this type provides
//! them with debug-mode shape checking and zero dependencies.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Row-major dense matrix of `f32`.
///
/// A vector is represented as a `1 × d` (row) or `d × 1` (column) matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create from a flat row-major vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: {} elements for a {}x{} matrix",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Create a `1 × d` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// View of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "set_row: width mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Stack row vectors into a matrix. Panics on ragged input or empty set.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self::from_vec(rows.len(), cols, data)
    }

    /// Matrix product `self · other` via the blocked (and, for large
    /// outputs, row-parallel) kernels in [`crate::kernel`]. Bit-identical to
    /// [`Self::matmul_reference`] for finite inputs (see the kernel module's
    /// determinism notes).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernel::gemm(
            &self.data,
            &other.data,
            None,
            self.rows,
            self.cols,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// The seed's naive `ikj` matmul with the `a == 0.0` sparsity skip:
    /// the reference the blocked kernels are equivalence-tested against,
    /// and the kernel of choice for genuinely sparse left operands.
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernel::matmul_reference(
            &self.data,
            &other.data,
            self.rows,
            self.cols,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// Linear layer over a batch of rows: `out[r] = self[r] · w + bias`,
    /// with the bias add fused into the kernel's store (one pass over the
    /// output, not a matmul followed by a full bias sweep).
    ///
    /// This is the batched-forward building block: stacking requests as rows
    /// turns a per-request `1 × d` matmul into one `B × d` matmul per layer.
    pub fn matmul_bias(&self, w: &Matrix, bias: &[f32]) -> Matrix {
        assert_eq!(
            self.cols, w.rows,
            "matmul_bias: {}x{} · {}x{}",
            self.rows, self.cols, w.rows, w.cols
        );
        assert_eq!(bias.len(), w.cols, "matmul_bias: bias width mismatch");
        let mut out = Matrix::zeros(self.rows, w.cols);
        crate::kernel::gemm(
            &self.data,
            &w.data,
            Some(bias),
            self.rows,
            self.cols,
            w.cols,
            &mut out.data,
        );
        out
    }

    /// The seed's two-pass `matmul` + bias sweep, kept as the reference the
    /// fused [`Self::matmul_bias`] is equivalence-tested against.
    pub fn matmul_bias_reference(&self, w: &Matrix, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), w.cols, "matmul_bias: bias width mismatch");
        let mut out = self.matmul_reference(w);
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| a * b).collect(),
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiply all elements by a scalar.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|x| x * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Per-row mean: returns a `rows × 1` column.
    pub fn row_means(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum::<f32>() / self.cols.max(1) as f32;
        }
        out
    }

    /// Mean over rows: returns a `1 × cols` row (zero row if `rows == 0`).
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for o in &mut out.data {
            *o *= inv;
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat: row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix { rows: self.rows, cols, data }
    }

    /// Vertical concatenation.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat: col mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Max absolute difference against another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data.iter().zip(other.data.iter()).map(|(&a, &b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| a + b).collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| a - b).collect(),
        }
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f32) -> Matrix {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Matrix::full(3, 5, 1.0);
        let b = Matrix::full(5, 2, 2.0);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&x| (x - 10.0).abs() < 1e-6));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn hadamard_and_axpy() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    fn matmul_bias_broadcasts_row_bias() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = Matrix::identity(2);
        let out = a.matmul_bias(&w, &[10.0, 20.0]);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn row_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set_row(1, &[7.0, 8.0, 9.0]);
        assert_eq!(m.row(1), &[7.0, 8.0, 9.0]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_rows_of_empty_is_zero_row() {
        let m = Matrix::zeros(0, 4);
        let mean = m.mean_rows();
        assert_eq!(mean.shape(), (1, 4));
        assert!(mean.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn concat_shapes() {
        let a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 3, 2.0);
        let h = a.hcat(&b);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.row(0), &[1.0, 1.0, 2.0, 2.0, 2.0]);
        let c = Matrix::full(1, 2, 3.0);
        let v = a.vcat(&c);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn sum_mean_norm() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert!((m.frobenius_norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn from_rows_stacks() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(2, 0), 5.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(1, 2);
        assert!(!m.has_non_finite());
        m.set(0, 1, f32::NAN);
        assert!(m.has_non_finite());
    }
}
