//! Release-mode microprobe for the i8 dot kernels: prints per-call latency of
//! `dot_i8` / `dot4_i8` against the scalar reference and the f32 `dot` at the
//! dims retrieval actually runs. Not a tracked baseline — `benches/kernels.rs`
//! owns that — this exists for quick kernel-tuning loops.
use std::time::Instant;

use zoomer_tensor::kernel::{dot4_i8, dot_i8, dot_i8_reference};
use zoomer_tensor::similarity::dot;

fn main() {
    for &d in &[16usize, 24, 64, 256] {
        let a: Vec<i8> = (0..d).map(|i| ((i * 37 + 11) % 255) as i8).collect();
        let b: Vec<i8> = (0..d).map(|i| ((i * 53 + 7) % 255) as i8).collect();
        let qs: Vec<Vec<i8>> =
            (0..4).map(|k| (0..d).map(|i| ((i * 29 + k * 97 + 3) % 255) as i8).collect()).collect();
        let af: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let bf: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let iters = 4_000_000u64;
        let run = |f: &dyn Fn() -> i64| {
            let t = Instant::now();
            let mut s = 0i64;
            for _ in 0..iters {
                s += std::hint::black_box(f());
            }
            (t.elapsed().as_nanos() as f64 / iters as f64, s)
        };
        let (i8ns, s1) = run(&|| dot_i8(std::hint::black_box(&a), std::hint::black_box(&b)) as i64);
        let (refns, s2) =
            run(&|| dot_i8_reference(std::hint::black_box(&a), std::hint::black_box(&b)) as i64);
        let (f4, s3) = run(&|| {
            let r = dot4_i8(
                std::hint::black_box(&a),
                std::hint::black_box(&qs[0]),
                &qs[1],
                &qs[2],
                &qs[3],
            );
            (r[0] + r[1] + r[2] + r[3]) as i64
        });
        let (f32ns, _) = run(&|| dot(std::hint::black_box(&af), std::hint::black_box(&bf)) as i64);
        assert_eq!(s1, s2);
        println!(
            "d={d:>4}: dot_i8 {i8ns:>6.1} ns | ref {refns:>6.1} | dot4_i8/q {:>6.1} | f32 dot {f32ns:>6.1}  (chk {s3})",
            f4 / 4.0
        );
    }
}
