//! # zoomer-core — the Zoomer reproduction, end to end
//!
//! This crate is the public façade of the workspace: a [`ZoomerPipeline`]
//! that runs the full paper system — behavior logs → heterogeneous graph →
//! focal-biased ROI sampling → multi-level-attention GNN training → frozen
//! snapshot → ANN index → online serving — plus re-exports of every
//! substrate crate.
//!
//! ```no_run
//! use zoomer_core::{PipelineConfig, ZoomerPipeline};
//!
//! let mut pipeline = ZoomerPipeline::new(PipelineConfig::default());
//! let report = pipeline.train();
//! println!("test AUC = {:.3}", report.final_auc);
//! let eval = pipeline.evaluate(&[100]);
//! println!("HitRate@100 = {:.3}", eval.hit_rates[0].1);
//! let server = pipeline.into_server().expect("serving build");
//! let query = zoomer_core::serving::Query::new(0, 1);
//! let results = server.handle_batch(&[query]).expect("serve");
//! println!("retrieved {} items", results[0].items.len());
//! ```

pub mod pipeline;

pub use pipeline::{PipelineConfig, ZoomerPipeline};

// Substrate re-exports, so downstream users depend on one crate.
pub use zoomer_autograd as autograd;
pub use zoomer_data as data;
pub use zoomer_graph as graph;
pub use zoomer_model as model;
pub use zoomer_obs as obs;
pub use zoomer_sampler as sampler;
pub use zoomer_serving as serving;
pub use zoomer_tensor as tensor;
pub use zoomer_train as train;
