//! The end-to-end pipeline: logs → graph → train → index → serve.

use std::sync::Arc;

use zoomer_data::{
    split_examples, with_sampled_negatives, TaobaoConfig, TaobaoData, TrainTestSplit,
};
use zoomer_model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_obs::MetricsRegistry;
use zoomer_serving::{OnlineServer, ServingConfig};
use zoomer_train::{train, EvalReport, TrainReport, TrainerConfig};

/// Configuration of a full pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Behavior-log generator settings (stands in for ODPS log parsing).
    pub data: TaobaoConfig,
    /// Model preset name (`"zoomer"`, `"graphsage"`, `"pinsage"`, …).
    pub model_preset: String,
    /// Train fraction (paper: 0.9 for Taobao graphs).
    pub train_fraction: f64,
    /// Extra uniformly-sampled negatives per positive training example
    /// (mixed negative sampling, §III-B). 0 disables.
    pub negative_ratio: usize,
    pub trainer: TrainerConfig,
    pub serving: ServingConfig,
    pub seed: u64,
    /// Observability registry shared by the train loop and the server built
    /// by [`ZoomerPipeline::into_server`]. `None` (default) runs without
    /// recording; pass an enabled registry to collect per-stage timings.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            data: TaobaoConfig::default_with_seed(0),
            model_preset: "zoomer".to_string(),
            train_fraction: 0.9,
            negative_ratio: 0,
            trainer: TrainerConfig::default(),
            serving: ServingConfig::default(),
            seed: 0,
            metrics: None,
        }
    }
}

/// The assembled pipeline. Construction generates the dataset and builds the
/// graph; [`ZoomerPipeline::train`] fits the model; [`ZoomerPipeline::into_server`]
/// freezes it and stands up the online stack.
pub struct ZoomerPipeline {
    config: PipelineConfig,
    data: TaobaoData,
    split: TrainTestSplit,
    model: UnifiedCtrModel,
}

impl ZoomerPipeline {
    pub fn new(config: PipelineConfig) -> Self {
        let data = TaobaoData::generate(config.data.clone());
        let split = Self::make_split(&config, &data);
        let dense_dim = data.graph.features().dense_dim();
        let model_config = ModelConfig::preset(&config.model_preset, config.seed, dense_dim)
            .unwrap_or_else(|| panic!("unknown model preset {:?}", config.model_preset));
        let model = UnifiedCtrModel::new(model_config);
        Self { config, data, split, model }
    }

    /// Construct around pre-generated data (experiments reuse one dataset
    /// across many models).
    pub fn with_data(config: PipelineConfig, data: TaobaoData) -> Self {
        let split = Self::make_split(&config, &data);
        let dense_dim = data.graph.features().dense_dim();
        let model_config = ModelConfig::preset(&config.model_preset, config.seed, dense_dim)
            .unwrap_or_else(|| panic!("unknown model preset {:?}", config.model_preset));
        let model = UnifiedCtrModel::new(model_config);
        Self { config, data, split, model }
    }

    fn make_split(config: &PipelineConfig, data: &TaobaoData) -> TrainTestSplit {
        let mut split = split_examples(data.ctr_examples(), config.train_fraction, config.seed);
        if config.negative_ratio > 0 {
            let items = data.item_nodes();
            split.train = with_sampled_negatives(
                &split.train,
                &items,
                config.negative_ratio,
                config.seed ^ 0x4E47,
            );
        }
        split
    }

    pub fn data(&self) -> &TaobaoData {
        &self.data
    }

    pub fn split(&self) -> &TrainTestSplit {
        &self.split
    }

    pub fn model(&self) -> &UnifiedCtrModel {
        &self.model
    }

    pub fn model_mut(&mut self) -> &mut UnifiedCtrModel {
        &mut self.model
    }

    /// Train the model on the split. The pipeline's metrics registry (if
    /// any) is threaded into the trainer so epoch/step timings record.
    pub fn train(&mut self) -> TrainReport {
        let mut trainer = self.config.trainer.clone();
        if trainer.metrics.is_none() {
            trainer.metrics = self.config.metrics.clone();
        }
        train(&mut self.model, &self.data.graph, &self.split, &trainer)
    }

    /// Full offline evaluation (AUC/MAE/RMSE + HitRate@K).
    pub fn evaluate(&mut self, ks: &[usize]) -> EvalReport {
        let items = self.data.item_nodes();
        zoomer_train::eval::full_eval(
            &mut self.model,
            &self.data.graph,
            &self.split.test,
            &items,
            ks,
            self.config.seed,
        )
    }

    /// Freeze the trained model and stand up the serving stack.
    pub fn into_server(mut self) -> Result<OnlineServer, zoomer_serving::ServingError> {
        let frozen = self.model.freeze(&self.data.graph);
        let items = self.data.item_nodes();
        let mut builder = OnlineServer::builder()
            .graph(Arc::new(self.data.graph))
            .frozen(frozen)
            .item_pool(&items)
            .config(self.config.serving)
            .seed(self.config.seed);
        if let Some(registry) = self.config.metrics {
            builder = builder.metrics(registry);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoomer_serving::Query;

    fn tiny_config() -> PipelineConfig {
        PipelineConfig {
            data: TaobaoConfig::tiny(101),
            trainer: TrainerConfig { epochs: 1, eval_sample: 100, ..Default::default() },
            seed: 101,
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_end_to_end() {
        let mut p = ZoomerPipeline::new(tiny_config());
        let report = p.train();
        assert!(report.steps > 0);
        assert!(report.final_auc > 0.4);
        let eval = p.evaluate(&[10, 40]);
        assert_eq!(eval.hit_rates.len(), 2);
        assert!(eval.hit_rates[0].1 <= eval.hit_rates[1].1);
        let server = p.into_server().expect("serving build");
        // user 0, a query node
        let results = server.handle_batch(&[Query::new(0, 41)]).expect("serve");
        assert!(!results[0].items.is_empty());
    }

    #[test]
    fn serving_deadline_flows_through_the_pipeline() {
        // The serving config is passed to the built server verbatim; a zero
        // budget must reject at admission with a typed error, not panic.
        let mut cfg = tiny_config();
        cfg.serving.deadline = Some(std::time::Duration::ZERO);
        let mut p = ZoomerPipeline::new(cfg);
        p.train();
        let server = p.into_server().expect("serving build");
        assert!(matches!(
            server.handle_batch(&[Query::new(0, 41)]),
            Err(zoomer_serving::ServingError::DeadlineExceeded { stage: "admission" })
        ));
    }

    #[test]
    fn negative_sampling_expands_training_set() {
        let mut cfg = tiny_config();
        cfg.negative_ratio = 2;
        let with_negs = ZoomerPipeline::new(cfg.clone());
        cfg.negative_ratio = 0;
        let plain = ZoomerPipeline::new(cfg);
        assert!(with_negs.split().train.len() > plain.split().train.len());
        // Test sets identical: negatives only augment training.
        assert_eq!(with_negs.split().test.len(), plain.split().test.len());
    }

    #[test]
    fn preset_selects_model() {
        let mut cfg = tiny_config();
        cfg.model_preset = "pinsage".to_string();
        let p = ZoomerPipeline::new(cfg);
        assert_eq!(zoomer_model::CtrModel::name(p.model()), "PinSage");
    }

    #[test]
    #[should_panic(expected = "unknown model preset")]
    fn bad_preset_panics() {
        let mut cfg = tiny_config();
        cfg.model_preset = "nonsense".to_string();
        let _ = ZoomerPipeline::new(cfg);
    }

    #[test]
    fn with_data_reuses_dataset() {
        let data = TaobaoData::generate(TaobaoConfig::tiny(102));
        let n_edges = data.graph.num_edges();
        let p = ZoomerPipeline::with_data(tiny_config(), data);
        assert_eq!(p.data().graph.num_edges(), n_edges);
    }
}
