//! Point-in-time metric snapshots: text / line-JSON rendering and diffing.
//!
//! The JSON form is *line*-JSON — one self-contained object per line — so a
//! snapshot can be appended to experiment logs and grepped without a JSON
//! parser. [`Snapshot::from_json_lines`] parses the same format back (a
//! hand-written mini-parser: this crate stays dependency-free).

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;

/// A point-in-time copy of every metric in a registry. Sorted by name
/// within each kind (the registry iterates a `BTreeMap`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

/// Error from [`Snapshot::from_json_lines`]: the 1-based line that failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotParseError {
    pub line: usize,
}

impl std::fmt::Display for SnapshotParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed snapshot JSON at line {}", self.line)
    }
}

impl std::error::Error for SnapshotParseError {}

impl Snapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// This snapshot minus an `earlier` one: counters and histograms become
    /// the activity between the two (matched by name; metrics absent earlier
    /// pass through unchanged), gauges keep their latest value.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n).unwrap_or(0))))
            .collect();
        let empty = HistogramSnapshot {
            name: String::new(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        };
        let histograms = self
            .histograms
            .iter()
            .map(|h| h.since(earlier.histogram(&h.name).unwrap_or(&empty)))
            .collect();
        Snapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Human-readable rendering: aligned counters/gauges, one percentile
    /// line per histogram (latencies shown in microseconds).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let us = |ns: u64| ns as f64 / 1_000.0;
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<36} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<36} {v:.6}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms (us):");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<36} count={:<8} mean={:<10.1} p50={:<10.1} p95={:<10.1} p99={:<10.1} max={:.1}",
                    h.name,
                    h.count,
                    us(h.mean() as u64),
                    us(h.p50()),
                    us(h.p95()),
                    us(h.p99()),
                    us(h.max),
                );
            }
        }
        out
    }

    /// Line-JSON rendering: one object per metric, e.g.
    /// `{"kind":"histogram","name":"serve.stage.rank_ns","count":3,...}`.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":{},\"value\":{v}}}",
                json_string(name)
            );
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"gauge\",\"name\":{},\"value\":{}}}",
                json_string(name),
                json_f64(*v)
            );
        }
        for h in &self.histograms {
            let mut buckets = String::new();
            for (i, &(idx, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    buckets.push(',');
                }
                let _ = write!(buckets, "[{idx},{n}]");
            }
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{buckets}]}}",
                json_string(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
            );
        }
        out
    }

    /// Parse the output of [`Snapshot::to_json_lines`] back into a snapshot.
    /// Blank lines are skipped; any malformed line fails the whole parse.
    pub fn from_json_lines(s: &str) -> Result<Snapshot, SnapshotParseError> {
        let mut snap = Snapshot::default();
        for (i, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_line(line) {
                Some(LineMetric::Counter(name, v)) => snap.counters.push((name, v)),
                Some(LineMetric::Gauge(name, v)) => snap.gauges.push((name, v)),
                Some(LineMetric::Histogram(h)) => snap.histograms.push(h),
                None => return Err(SnapshotParseError { line: i + 1 }),
            }
        }
        Ok(snap)
    }
}

/// Quote a metric name as a JSON string (escapes `"` `\` and control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` so it parses back to the identical bits (`{}` on f64 is
/// shortest-round-trip), forcing a `.0` onto integral values so the token
/// stays visibly a float. Non-finite values become `null` (JSON has no NaN).
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

enum LineMetric {
    Counter(String, u64),
    Gauge(String, f64),
    Histogram(HistogramSnapshot),
}

/// Minimal single-line JSON object parser for the three shapes this module
/// emits. Returns `None` on anything malformed.
fn parse_line(line: &str) -> Option<LineMetric> {
    let mut cur = Cursor { b: line.as_bytes(), i: 0 };
    cur.eat(b'{')?;
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    let mut value: Option<f64> = None;
    let mut count: Option<u64> = None;
    let mut sum: Option<u64> = None;
    let mut min: Option<u64> = None;
    let mut max: Option<u64> = None;
    let mut buckets: Option<Vec<(u32, u64)>> = None;
    loop {
        let key = cur.string()?;
        cur.eat(b':')?;
        match key.as_str() {
            "kind" => kind = Some(cur.string()?),
            "name" => name = Some(cur.string()?),
            "value" => value = Some(cur.number_or_null()?),
            "count" => count = Some(cur.u64()?),
            "sum" => sum = Some(cur.u64()?),
            "min" => min = Some(cur.u64()?),
            "max" => max = Some(cur.u64()?),
            "buckets" => buckets = Some(cur.pairs()?),
            _ => return None,
        }
        if cur.eat(b',').is_none() {
            break;
        }
    }
    cur.eat(b'}')?;
    cur.end()?;
    let name = name?;
    match kind?.as_str() {
        "counter" => {
            let v = value?;
            // Counters are u64; reject fractional or out-of-range payloads.
            if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
                return None;
            }
            Some(LineMetric::Counter(name, v as u64))
        }
        "gauge" => Some(LineMetric::Gauge(name, value?)),
        "histogram" => Some(LineMetric::Histogram(HistogramSnapshot {
            name,
            count: count?,
            sum: sum?,
            min: min?,
            max: max?,
            buckets: buckets?,
        })),
        _ => None,
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    /// Consume one expected byte (after whitespace); `None` if absent.
    fn eat(&mut self, c: u8) -> Option<()> {
        self.skip_ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn end(&mut self) -> Option<()> {
        self.skip_ws();
        if self.i == self.b.len() {
            Some(())
        } else {
            None
        }
    }

    /// Parse a quoted string with `\"`, `\\`, and `\uXXXX` escapes.
    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match *self.b.get(self.i)? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match *self.b.get(self.i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'u' => {
                            let hex = self.b.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar value.
                    let rest = std::str::from_utf8(&self.b[self.i..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    /// Slice out one numeric token (digits, sign, dot, exponent).
    fn num_token(&mut self) -> Option<&str> {
        self.skip_ws();
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i]).ok()
    }

    fn u64(&mut self) -> Option<u64> {
        self.num_token()?.parse().ok()
    }

    /// An `f64`, or the literal `null` (non-finite placeholder) as NaN.
    fn number_or_null(&mut self) -> Option<f64> {
        self.skip_ws();
        if self.b.get(self.i..self.i + 4) == Some(b"null") {
            self.i += 4;
            return Some(f64::NAN);
        }
        self.num_token()?.parse().ok()
    }

    /// `[[idx,count],...]` — the sparse histogram bucket list.
    fn pairs(&mut self) -> Option<Vec<(u32, u64)>> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Some(out);
        }
        loop {
            self.eat(b'[')?;
            let idx: u64 = self.u64()?;
            cur_check(idx <= u32::MAX as u64)?;
            self.eat(b',')?;
            let n = self.u64()?;
            self.eat(b']')?;
            out.push((idx as u32, n));
            if self.eat(b',').is_none() {
                break;
            }
        }
        self.eat(b']')?;
        Some(out)
    }
}

fn cur_check(ok: bool) -> Option<()> {
    if ok {
        Some(())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample() -> Snapshot {
        let r = MetricsRegistry::enabled();
        r.counter("serve.requests").add(42);
        r.counter("cache.hits").add(7);
        r.gauge("train.epoch_loss").set(0.123_456_789);
        let h = r.histogram("serve.stage.rank_ns");
        for v in [50u64, 900, 1_000_000, 12, 12, 80_000] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn text_mentions_every_metric() {
        let s = sample();
        let text = s.to_text();
        for name in ["serve.requests", "cache.hits", "train.epoch_loss", "serve.stage.rank_ns"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("p95="));
    }

    #[test]
    fn json_round_trip_is_identity() {
        let s = sample();
        let parsed = Snapshot::from_json_lines(&s.to_json_lines()).expect("parses");
        assert_eq!(parsed, s);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = Snapshot::default();
        assert_eq!(Snapshot::from_json_lines(&s.to_json_lines()).expect("parses"), s);
        assert_eq!(s.to_text(), "");
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = Snapshot::from_json_lines(
            "{\"kind\":\"counter\",\"name\":\"x\",\"value\":1}\nnot json\n",
        )
        .expect_err("must fail");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn fractional_counter_is_rejected() {
        assert!(Snapshot::from_json_lines("{\"kind\":\"counter\",\"name\":\"x\",\"value\":1.5}")
            .is_err());
    }

    #[test]
    fn non_finite_gauge_round_trips_as_nan() {
        let s = Snapshot { gauges: vec![("g".to_string(), f64::INFINITY)], ..Snapshot::default() };
        let parsed = Snapshot::from_json_lines(&s.to_json_lines()).expect("parses");
        assert!(parsed.gauge("g").expect("present").is_nan());
    }

    #[test]
    fn escaped_names_round_trip() {
        let s =
            Snapshot { counters: vec![("we\"ird\\name\tx".to_string(), 3)], ..Snapshot::default() };
        let parsed = Snapshot::from_json_lines(&s.to_json_lines()).expect("parses");
        assert_eq!(parsed, s);
    }

    #[test]
    fn since_diffs_counters_and_histograms() {
        let r = MetricsRegistry::enabled();
        let c = r.counter("n");
        let h = r.histogram("lat");
        c.add(5);
        h.record(10);
        let before = r.snapshot();
        c.add(3);
        h.record(20);
        h.record(30);
        let diff = r.snapshot().since(&before);
        assert_eq!(diff.counter("n"), Some(3));
        let hd = diff.histogram("lat").expect("present");
        assert_eq!(hd.count, 2);
    }
}
