//! Stage timers: spans that measure one pipeline stage into a histogram.

use std::time::Instant;

use crate::metrics::Histogram;

/// A started span over one pipeline stage. Created by [`StageTimer::start`];
/// records elapsed nanoseconds into the histogram when stopped or dropped.
///
/// When the owning registry is disabled, `start` reads one relaxed atomic and
/// never touches the clock — the span is inert and drop is free.
#[must_use = "a StageTimer measures until stopped or dropped"]
pub struct StageTimer {
    hist: Histogram,
    started: Option<Instant>,
}

impl StageTimer {
    /// Begin timing into `hist`. Reads the clock only if recording is on.
    #[inline]
    pub fn start(hist: &Histogram) -> Self {
        let started = if hist.is_enabled() { Some(Instant::now()) } else { None };
        Self { hist: hist.clone(), started }
    }

    /// Stop the span, record it, and return the elapsed nanoseconds
    /// (0 when the span was inert).
    #[inline]
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        match self.started.take() {
            Some(t0) => {
                // u64 nanoseconds cover ~584 years; saturate rather than truncate.
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.hist.record(ns);
                ns
            }
            None => 0,
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn stop_records_once() {
        let r = MetricsRegistry::enabled();
        let h = r.histogram("stage");
        let t = StageTimer::start(&h);
        let ns = t.stop();
        assert!(ns > 0, "a real span elapses time");
        assert_eq!(h.count(), 1, "stop records exactly once (not again on drop)");
    }

    #[test]
    fn drop_records_unstopped_span() {
        let r = MetricsRegistry::enabled();
        let h = r.histogram("stage");
        {
            let _t = StageTimer::start(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn disabled_registry_produces_inert_span() {
        let r = MetricsRegistry::new();
        let h = r.histogram("stage");
        let t = StageTimer::start(&h);
        assert_eq!(t.stop(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn enabling_mid_span_does_not_record_partial_time() {
        let r = MetricsRegistry::new();
        let h = r.histogram("stage");
        let t = StageTimer::start(&h); // inert: flag was off at start
        r.set_enabled(true);
        assert_eq!(t.stop(), 0);
        assert_eq!(h.count(), 0);
    }
}
