//! Fixed-bucket log-linear histogram layout and percentile extraction.
//!
//! Values (nanoseconds as `u64`) map onto a fixed set of buckets: exact
//! buckets below [`LINEAR_MAX`], then for each power-of-two range
//! [2^e, 2^(e+1)) a split into [`SUBDIV`] equal sub-buckets. Bucket width is
//! therefore at most `value / SUBDIV`, so a percentile reported as the bucket
//! midpoint is within `1 / (2 · SUBDIV)` ≈ 1.6 % relative error of the exact
//! sample — "exact" at the resolution the layout fixes, independent of how
//! many samples were recorded. Recording is one relaxed `fetch_add` into a
//! pre-sized array: no allocation, no lock, no rebucketing.

/// Values below this are their own bucket (exact small-value resolution).
pub const LINEAR_MAX: u64 = 32;

/// Sub-buckets per power-of-two range.
pub const SUBDIV: u64 = 32;

/// log2(LINEAR_MAX): first exponent handled by the log-linear region.
const FIRST_EXP: u32 = 5;

/// Total bucket count: the linear region plus `SUBDIV` sub-buckets for each
/// exponent in `FIRST_EXP..=63`.
pub const BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_EXP as usize) * SUBDIV as usize;

/// Bucket index for a value. Total order: `v <= w` implies
/// `bucket_index(v) <= bucket_index(w)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    // v >= 32 so leading_zeros <= 58 and e >= FIRST_EXP.
    let e = 63 - v.leading_zeros();
    let sub = (v >> (e - FIRST_EXP)) & (SUBDIV - 1);
    LINEAR_MAX as usize + (e - FIRST_EXP) as usize * SUBDIV as usize + sub as usize
}

/// Inclusive-exclusive `[lo, hi)` value range of a bucket. For the last
/// bucket `hi` saturates at `u64::MAX`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < LINEAR_MAX as usize {
        return (index as u64, index as u64 + 1);
    }
    let rel = index - LINEAR_MAX as usize;
    let e = FIRST_EXP + (rel / SUBDIV as usize) as u32;
    let sub = (rel % SUBDIV as usize) as u64;
    let width = 1u64 << (e - FIRST_EXP); // 2^e / SUBDIV
    let lo = (1u64 << e).wrapping_add(sub * width);
    let hi = lo.saturating_add(width);
    (lo, hi)
}

/// Representative value reported for a bucket: the midpoint of its range.
pub fn bucket_mid(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    lo + (hi - lo) / 2
}

/// A point-in-time copy of one histogram: sparse bucket counts plus the
/// scalar accumulators. Percentiles are extracted here, not at record time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Sorted `(bucket index, count)` pairs; zero-count buckets omitted.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Value at percentile `p` in [0, 1]: the representative of the bucket
    /// holding the sample of rank `ceil(p · count)` (nearest-rank
    /// definition), clamped into the observed `[min, max]` range. The
    /// extreme ranks are the tracked `min`/`max` themselves, so p0 and p100
    /// are exact. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (exact: from the saturating sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// This snapshot minus an `earlier` one of the same histogram: the
    /// samples recorded between the two. `min`/`max` cannot be un-recorded,
    /// so the diff re-derives them from the surviving buckets' bounds (exact
    /// to bucket resolution; percentile clamping keeps working).
    pub fn since(&self, earlier: &Self) -> Self {
        let mut buckets: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let mut e = earlier.buckets.iter().peekable();
        for &(idx, n) in &self.buckets {
            let mut prev = 0u64;
            while let Some(&&(eidx, en)) = e.peek() {
                if eidx < idx {
                    e.next();
                } else {
                    if eidx == idx {
                        prev = en;
                        e.next();
                    }
                    break;
                }
            }
            let d = n.saturating_sub(prev);
            if d > 0 {
                buckets.push((idx, d));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        let (min, max) = match (buckets.first(), buckets.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => {
                (bucket_bounds(lo as usize).0, bucket_bounds(hi as usize).1.saturating_sub(1))
            }
            _ => (0, 0),
        };
        Self {
            name: self.name.clone(),
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_ordered_and_cover_u64() {
        let mut prev = 0usize;
        for shift in 0..64 {
            let v = 1u64 << shift;
            for probe in [v, v + 1, v.saturating_mul(3) / 2, v.wrapping_add(v / 4)] {
                let b = bucket_index(probe);
                assert!(b < BUCKETS, "bucket {b} out of range for {probe}");
                let (lo, hi) = bucket_bounds(b);
                assert!(
                    lo <= probe && (probe < hi || hi == u64::MAX),
                    "{probe} not in [{lo},{hi})"
                );
            }
            let b = bucket_index(v);
            assert!(b >= prev, "ordering violated at 2^{shift}");
            prev = b;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn monotone_in_value() {
        let mut last = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let b = bucket_index(v);
            assert!(b >= last, "bucket_index not monotone at {v}");
            last = b;
            v = v * 3 / 2 + 1;
        }
    }

    #[test]
    fn relative_width_is_bounded() {
        // Above the linear region every bucket is at most lo/SUBDIV wide.
        for v in [100u64, 1_000, 50_000, 1_000_000, u64::MAX / 2] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(hi - lo <= lo / SUBDIV + 1, "bucket too wide at {v}: [{lo},{hi})");
        }
    }

    fn snap(values: &[u64]) -> HistogramSnapshot {
        let mut counts = std::collections::BTreeMap::new();
        for &v in values {
            *counts.entry(bucket_index(v) as u32).or_insert(0u64) += 1;
        }
        HistogramSnapshot {
            name: "t".into(),
            count: values.len() as u64,
            sum: values.iter().sum(),
            min: values.iter().copied().min().unwrap_or(0),
            max: values.iter().copied().max().unwrap_or(0),
            buckets: counts.into_iter().collect(),
        }
    }

    #[test]
    fn percentiles_of_small_exact_values() {
        let s = snap(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(s.percentile(0.5), 5);
        assert_eq!(s.percentile(1.0), 10);
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.p99(), 10);
        assert!((s.mean() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = snap(&[]);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn diff_recovers_later_samples() {
        let early = snap(&[5, 5, 100]);
        let late = snap(&[5, 5, 100, 7, 7, 7, 200_000]);
        let d = late.since(&early);
        assert_eq!(d.count, 4);
        assert_eq!(d.sum, 7 * 3 + 200_000);
        assert_eq!(d.percentile(0.5), 7);
        // min/max are bucket-resolution approximations of {7, 200_000}.
        assert_eq!(d.min, 7);
        let (lo, hi) = bucket_bounds(bucket_index(200_000));
        assert!(d.max >= lo && d.max < hi);
    }

    #[test]
    fn diff_against_self_is_empty() {
        let s = snap(&[1, 10, 100, 1000]);
        let d = s.since(&s);
        assert_eq!(d.count, 0);
        assert!(d.buckets.is_empty());
    }
}
