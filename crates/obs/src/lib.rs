//! `zoomer-obs` — dependency-free observability for the serving/train stack.
//!
//! The paper's production deployment runs behind strict latency SLOs
//! (§VII: P99 ≤ 23 ms at peak QPS); seeing *where* a request spends its
//! time requires per-stage accounting that is cheap enough to leave compiled
//! into the hot path. This crate provides exactly that and nothing else:
//!
//! - [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   latency [`Histogram`]s. Handles are registered once (a lock, at
//!   construction time) and then recorded through relaxed atomics only — the
//!   request path never takes a lock and never allocates.
//! - [`StageTimer`] — a span that measures one pipeline stage into a
//!   histogram. When the registry is disabled (the default) starting a timer
//!   is a single relaxed load and no clock is read.
//! - [`Snapshot`] — a point-in-time copy of every metric, renderable as
//!   human-readable text ([`Snapshot::to_text`]) and line-JSON
//!   ([`Snapshot::to_json_lines`], parsed back by
//!   [`Snapshot::from_json_lines`]), and diffable ([`Snapshot::since`]) so a
//!   load harness can report exactly the work done during its run.
//! - [`CacheStats`] — the named hit/miss/refresh triple the neighbor cache
//!   reports and the registry ingests ([`MetricsRegistry::ingest_cache`]).
//!
//! Counters and gauges are *not* gated on the enabled flag: they are single
//! relaxed atomic operations, and consumers (e.g. cache hit-rate accounting)
//! rely on them being always correct. The flag gates the operations with a
//! real cost — reading the clock and recording histogram samples.
//!
//! This crate is hot-path-adjacent: zoomer-lint rules L001/L003 apply to it,
//! and nothing in the non-test code can panic.

#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

pub mod histogram;
pub mod metrics;
pub mod snapshot;
pub mod timer;

pub use histogram::{bucket_bounds, bucket_index, HistogramSnapshot, BUCKETS, LINEAR_MAX, SUBDIV};
pub use metrics::{CacheStats, Counter, Gauge, Histogram, MetricsRegistry};
pub use snapshot::Snapshot;
pub use timer::StageTimer;
