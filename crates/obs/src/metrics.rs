//! The atomic metrics registry and its handle types.
//!
//! Registration (naming a metric) takes a lock once, at construction time;
//! recording through a handle is relaxed atomics only. Handles are `Arc`s
//! onto the same cells the registry snapshots, so they can be stored in
//! hot-path structs and recorded through `&self` from any thread.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use crate::histogram::{bucket_index, HistogramSnapshot, BUCKETS};
use crate::snapshot::Snapshot;

/// Named cache statistics: the type `NeighborCache::stats()` returns and the
/// registry ingests ([`MetricsRegistry::ingest_cache`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh computation.
    pub misses: u64,
    /// Entries replaced by the asynchronous refresh path.
    pub refreshes: u64,
    /// Entries evicted to keep the cache within its capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; 0 when never queried.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Component-wise difference (counters are monotone; saturates at 0).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            refreshes: self.refreshes.saturating_sub(earlier.refreshes),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// A monotone event counter. *Not* gated on the registry's enabled flag: a
/// counter bump is a single relaxed `fetch_add`, and consumers (cache
/// hit-rate accounting) rely on counters being always correct.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry (counts, never snapshotted).
    pub fn detached() -> Self {
        Self { cell: Arc::new(AtomicU64::new(0)) }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value — for mirroring an external monotone counter into
    /// the registry (e.g. [`MetricsRegistry::ingest_cache`]), not for
    /// hot-path use.
    pub fn store(&self, n: u64) {
        self.cell.store(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64` (stored as its bit pattern).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    pub fn detached() -> Self {
        Self { cell: Arc::new(AtomicU64::new(0f64.to_bits())) }
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// The shared state of one histogram: fixed bucket array plus scalar
/// accumulators. Padded nothing, locked nothing.
struct HistCell {
    enabled: Arc<AtomicBool>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket latency histogram (values in nanoseconds). Recording is
/// gated on the owning registry's enabled flag and costs a handful of
/// relaxed atomic operations when on, one relaxed load when off.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistCell>,
}

impl Histogram {
    fn with_flag(enabled: Arc<AtomicBool>) -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, || AtomicU64::new(0));
        Self {
            cell: Arc::new(HistCell {
                enabled,
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// A histogram not attached to any registry, always recording.
    pub fn detached() -> Self {
        Self::with_flag(Arc::new(AtomicBool::new(true)))
    }

    /// Whether recording is currently on (the owning registry's flag).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cell.enabled.load(Ordering::Relaxed)
    }

    /// Record one value (no-op while disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.is_enabled() {
            return;
        }
        let c = &*self.cell;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let c = &*self.cell;
        let mut buckets = Vec::new();
        for (i, b) in c.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        let count = c.count.load(Ordering::Relaxed);
        let min = c.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 && min == u64::MAX { 0 } else { min },
            max: c.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry: a named set of metrics sharing one enabled flag.
///
/// Disabled by default ([`MetricsRegistry::new`]); a disabled registry still
/// counts counters and sets gauges (both are single relaxed atomics) but
/// skips histogram recording and clock reads entirely.
#[derive(Default)]
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").field("enabled", &self.is_enabled()).finish()
    }
}

impl MetricsRegistry {
    /// A disabled registry (near-free recording until enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with recording already on.
    pub fn enabled() -> Self {
        let r = Self::new();
        r.set_enabled(true);
        r
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip histogram/timer recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Lock the metric map, recovering from poisoning: every critical
    /// section below is a single map operation that cannot be torn by a
    /// panicking holder.
    fn metrics_mut(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn metrics_ref(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get or register the counter `name`. If the name is already taken by a
    /// metric of another kind, a detached handle is returned (it records but
    /// is not snapshotted) — callers own the namespace, so this only happens
    /// on a naming bug and must not panic the server.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics_mut();
        match m.entry(name.to_string()).or_insert_with(|| Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c.clone(),
            _ => Counter::detached(),
        }
    }

    /// Get or register the gauge `name` (same collision policy as
    /// [`Self::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics_mut();
        match m.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::detached(),
        }
    }

    /// Get or register the histogram `name` (same collision policy as
    /// [`Self::counter`]). The handle shares this registry's enabled flag.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics_mut();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::with_flag(Arc::clone(&self.enabled))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::with_flag(Arc::clone(&self.enabled)),
        }
    }

    /// Mirror a [`CacheStats`] reading into `{prefix}.hits` / `.misses` /
    /// `.refreshes` / `.evictions` counters, so cache effectiveness appears
    /// in snapshots next to the stage timings.
    pub fn ingest_cache(&self, prefix: &str, stats: CacheStats) {
        self.counter(&format!("{prefix}.hits")).store(stats.hits);
        self.counter(&format!("{prefix}.misses")).store(stats.misses);
        self.counter(&format!("{prefix}.refreshes")).store(stats.refreshes);
        self.counter(&format!("{prefix}.evictions")).store(stats.evictions);
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics_ref();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => histograms.push(h.snapshot(name)),
            }
        }
        Snapshot { counters, gauges, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_regardless_of_enabled() {
        let r = MetricsRegistry::new();
        assert!(!r.is_enabled());
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same cell.
        assert_eq!(r.counter("x").get(), 5);
    }

    #[test]
    fn gauges_hold_last_value() {
        let r = MetricsRegistry::new();
        let g = r.gauge("loss");
        g.set(0.75);
        assert_eq!(r.gauge("loss").get(), 0.75);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn histogram_respects_enabled_flag() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        h.record(100);
        assert_eq!(h.count(), 0, "disabled registry must not record");
        r.set_enabled(true);
        h.record(100);
        h.record(200);
        assert_eq!(h.count(), 2);
        r.set_enabled(false);
        h.record(300);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn detached_histogram_always_records() {
        let h = Histogram::detached();
        h.record(7);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn kind_collision_returns_detached_handle() {
        let r = MetricsRegistry::enabled();
        let c = r.counter("name");
        c.inc();
        let h = r.histogram("name"); // wrong kind: detached, not snapshotted
        h.record(5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("name"), Some(1));
        assert!(snap.histogram("name").is_none());
    }

    #[test]
    fn snapshot_collects_all_kinds() {
        let r = MetricsRegistry::enabled();
        r.counter("a").add(3);
        r.gauge("b").set(1.25);
        r.histogram("c").record(10);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), Some(3));
        assert_eq!(s.gauges, vec![("b".to_string(), 1.25)]);
        let h = s.histogram("c").expect("histogram present");
        assert_eq!(h.count, 1);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 10);
    }

    #[test]
    fn ingest_cache_mirrors_counters() {
        let r = MetricsRegistry::new();
        let stats = CacheStats { hits: 8, misses: 2, refreshes: 1, evictions: 3 };
        r.ingest_cache("cache", stats);
        let s = r.snapshot();
        assert_eq!(s.counter("cache.hits"), Some(8));
        assert_eq!(s.counter("cache.misses"), Some(2));
        assert_eq!(s.counter("cache.refreshes"), Some(1));
        assert_eq!(s.counter("cache.evictions"), Some(3));
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cache_stats_since_saturates() {
        let a = CacheStats { hits: 10, misses: 4, refreshes: 2, evictions: 6 };
        let b = CacheStats { hits: 7, misses: 5, refreshes: 0, evictions: 1 };
        assert_eq!(a.since(&b), CacheStats { hits: 3, misses: 0, refreshes: 2, evictions: 5 });
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = std::sync::Arc::new(MetricsRegistry::enabled());
        let h = r.histogram("lat");
        let c = r.counter("n");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v % 97);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(c.get(), 4000);
        let snap = r.snapshot();
        let hs = snap.histogram("lat").expect("present");
        assert_eq!(hs.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 4000);
    }
}
