//! Property tests pitting histogram percentile extraction against a
//! sorted-vector oracle: for random samples, every reported percentile must
//! land within one bucket width (≤ `value / SUBDIV + 1`) of the exact
//! nearest-rank sample, and the extremes must be exact.

use proptest::prelude::*;
use zoomer_obs::{Histogram, MetricsRegistry, SUBDIV};

/// Exact nearest-rank percentile over the raw samples.
fn oracle(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn recorded(values: &[u64]) -> zoomer_obs::HistogramSnapshot {
    let r = MetricsRegistry::enabled();
    let h = r.histogram("h");
    for &v in values {
        h.record(v);
    }
    let snap = r.snapshot();
    snap.histogram("h").expect("registered above").clone()
}

/// |approx − exact| must stay within the bucket width at `exact`.
fn assert_within_bucket(approx: u64, exact: u64, p: f64) {
    let tol = exact / SUBDIV + 1;
    let err = approx.abs_diff(exact);
    assert!(err <= tol, "p{p}: approx {approx} vs exact {exact} (err {err} > tol {tol})");
}

proptest! {
    #[test]
    fn percentiles_match_sorted_oracle(
        values in prop::collection::vec(0u64..2_000_000_000, 1..400),
        p_mille in 0u64..=1000,
    ) {
        let snap = recorded(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        let p = p_mille as f64 / 1000.0;
        assert_within_bucket(snap.percentile(p), oracle(&sorted, p), p);
    }

    #[test]
    fn extremes_and_moments_are_exact(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let snap = recorded(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        prop_assert_eq!(snap.count, sorted.len() as u64);
        prop_assert_eq!(snap.sum, sorted.iter().sum::<u64>());
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().expect("non-empty"));
        // The extreme ranks are the tracked min/max: exact by construction.
        prop_assert_eq!(snap.percentile(1.0), snap.max);
        prop_assert_eq!(snap.percentile(0.0), snap.min);
    }

    #[test]
    fn linear_region_is_lossless(
        values in prop::collection::vec(0u64..32, 1..100),
        p_mille in 0u64..=1000,
    ) {
        // Below LINEAR_MAX every value has its own bucket: percentiles exact.
        let snap = recorded(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let p = p_mille as f64 / 1000.0;
        prop_assert_eq!(snap.percentile(p), oracle(&sorted, p));
    }

    #[test]
    fn diff_percentiles_track_later_samples(
        early in prop::collection::vec(0u64..100_000, 0..100),
        later in prop::collection::vec(0u64..100_000, 1..100),
    ) {
        let r = MetricsRegistry::enabled();
        let h: Histogram = r.histogram("h");
        for &v in &early {
            h.record(v);
        }
        let before = r.snapshot();
        for &v in &later {
            h.record(v);
        }
        let diff = r.snapshot().since(&before);
        let hd = diff.histogram("h").expect("registered above");
        prop_assert_eq!(hd.count, later.len() as u64);
        let mut sorted = later.clone();
        sorted.sort_unstable();
        for &(p, label) in &[(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let exact = oracle(&sorted, p);
            let approx = hd.percentile(p);
            let tol = exact / SUBDIV + 1;
            prop_assert!(
                approx.abs_diff(exact) <= tol,
                "{} diverged: {} vs {}", label, approx, exact
            );
        }
    }
}
