//! Snapshot serialization round-trips: randomized registries rendered to
//! line-JSON must parse back identically, and the text rendering must carry
//! every metric name.

use proptest::prelude::*;
use zoomer_obs::{MetricsRegistry, Snapshot};

fn build_registry(
    counters: &[(u8, u64)],
    gauges: &[(u8, i64)],
    hists: &[(u8, Vec<u64>)],
) -> MetricsRegistry {
    let r = MetricsRegistry::enabled();
    for &(id, v) in counters {
        r.counter(&format!("counter.{id}")).add(v);
    }
    for &(id, v) in gauges {
        r.gauge(&format!("gauge.{id}")).set(v as f64 / 128.0);
    }
    for (id, values) in hists {
        let h = r.histogram(&format!("hist.{id}"));
        for &v in values {
            h.record(v);
        }
    }
    r
}

proptest! {
    #[test]
    fn json_round_trip_is_identity(
        counters in prop::collection::vec((0u8..20, 0u64..1_000_000), 0..8),
        gauges in prop::collection::vec((0u8..20, -1_000_000i64..1_000_000), 0..8),
        hists in prop::collection::vec(
            (0u8..20, prop::collection::vec(0u64..10_000_000_000, 0..50)),
            0..4,
        ),
    ) {
        let snap = build_registry(&counters, &gauges, &hists).snapshot();
        let parsed = Snapshot::from_json_lines(&snap.to_json_lines()).expect("parses back");
        prop_assert_eq!(parsed, snap);
    }

    #[test]
    fn text_rendering_names_every_metric(
        counters in prop::collection::vec((0u8..20, 0u64..1_000), 1..6),
        hists in prop::collection::vec(
            (0u8..20, prop::collection::vec(0u64..1_000_000, 1..20)),
            1..3,
        ),
    ) {
        let snap = build_registry(&counters, &[], &hists).snapshot();
        let text = snap.to_text();
        for (name, _) in &snap.counters {
            prop_assert!(text.contains(name.as_str()), "text missing {}", name);
        }
        for h in &snap.histograms {
            prop_assert!(text.contains(h.name.as_str()), "text missing {}", h.name);
        }
    }

    #[test]
    fn parsed_percentiles_match_original(
        values in prop::collection::vec(1u64..100_000_000, 1..200),
    ) {
        let r = MetricsRegistry::enabled();
        let h = r.histogram("lat");
        for &v in &values {
            h.record(v);
        }
        let snap = r.snapshot();
        let parsed = Snapshot::from_json_lines(&snap.to_json_lines()).expect("parses back");
        let a = snap.histogram("lat").expect("present");
        let b = parsed.histogram("lat").expect("present");
        for p in [0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(a.percentile(p), b.percentile(p));
        }
        prop_assert!((a.mean() - b.mean()).abs() < 1e-9);
    }
}
