//! Fig 4 — the paper's motivating observations.
//!
//! (a) Training cost vs #sampled neighbors: memory footprint and training
//!     throughput of a 2-layer GCN as the per-node fan-out K grows.
//! (b) Similarities between successive queries posed by the same user:
//!     low similarity ⇒ focal interests drift quickly.
//! (c) CDF of similarities between focal points and the user's local graph,
//!     on a "1-hour" and a "1-day" graph: most history is weakly relevant
//!     to any single focal pair.

use zoomer_bench::{banner, million_dataset, write_json, BenchScale};
use zoomer_core::model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_core::sampler::{build_roi, FocalBiasedSampler, FocalContext};
use zoomer_core::tensor::seeded_rng;

fn main() {
    let scale = BenchScale::from_env();
    let seed = 4242;
    banner(
        "Fig 4 — motivating observations",
        "Fig 4(a): memory ↑ / iterations-per-second ↓ as sampled neighbors grow; \
         Fig 4(b): successive queries mostly dissimilar; \
         Fig 4(c): ~80%/40% of focal-local similarities below 0 on 1-hour/1-day graphs",
        scale,
        seed,
    );
    let mut json = serde_json::Map::new();

    // ---- (a) cost vs sampling number -----------------------------------
    let (data, split) = million_dataset(scale, seed);
    let dd = data.graph.features().dense_dim();
    println!("\nFig 4(a) — 2-layer GCN training cost vs sampled neighbors K");
    println!("{:>4} {:>14} {:>14} {:>16}", "K", "steps/s", "ROI nodes", "est. KB/example");
    let steps = match scale {
        BenchScale::Smoke => 60,
        BenchScale::Small => 400,
        BenchScale::Full => 1200,
    };
    let mut series_a = Vec::new();
    for k in [5usize, 10, 15, 20, 25, 30] {
        let mut config = ModelConfig::ablation_gcn(seed, dd);
        config.fanout = k;
        let mut model = UnifiedCtrModel::new(config);
        let mut rng = seeded_rng(seed);
        // Measure ROI size (memory proxy: nodes × (embed rows × dim × 4B)).
        let focal_sampler = FocalBiasedSampler::default();
        let mut roi_nodes = 0usize;
        for ex in split.train.iter().take(50) {
            let ctx = FocalContext::for_request(&data.graph, ex.user, ex.query);
            let roi = build_roi(&data.graph, ex.user, &ctx, &focal_sampler, 2, k, &mut rng);
            roi_nodes += roi.size();
        }
        let mean_roi = roi_nodes as f64 / 50.0;
        let kb_per_example = mean_roi * (6.0 * 16.0 * 4.0) / 1024.0; // ≈6 rows × d × f32
        let t = std::time::Instant::now();
        for ex in split.train.iter().take(steps) {
            let _ = model.train_step(&data.graph, ex, &mut rng);
        }
        let sps = steps as f64 / t.elapsed().as_secs_f64();
        println!("{k:>4} {sps:>14.1} {mean_roi:>14.1} {kb_per_example:>16.2}");
        series_a.push(serde_json::json!({
            "k": k, "steps_per_sec": sps, "roi_nodes": mean_roi, "kb_per_example": kb_per_example
        }));
    }
    println!("(paper shape: memory grows superlinearly, iterations/s falls with K)");
    json.insert("fig4a".into(), serde_json::Value::Array(series_a));

    // ---- (b) successive query similarity -------------------------------
    println!("\nFig 4(b) — similarity between successive queries of the same user");
    let sims = data.successive_query_similarities();
    let mean = sims.iter().map(|&s| s as f64).sum::<f64>() / sims.len().max(1) as f64;
    let below_half = sims.iter().filter(|&&s| s < 0.5).count() as f64 / sims.len().max(1) as f64;
    let below_zero = sims.iter().filter(|&&s| s < 0.0).count() as f64 / sims.len().max(1) as f64;
    println!("pairs measured       : {}", sims.len());
    println!("mean cosine          : {mean:.3}");
    println!("fraction < 0.5       : {below_half:.3}");
    println!("fraction < 0.0       : {below_zero:.3}");
    println!("(paper shape: successive queries within sessions usually have low similarity)");
    json.insert(
        "fig4b".into(),
        serde_json::json!({"pairs": sims.len(), "mean": mean, "frac_below_half": below_half, "frac_below_zero": below_zero}),
    );

    // ---- (c) focal ↔ local-graph similarity CDF -------------------------
    println!("\nFig 4(c) — CDF of focal ↔ clicked-item similarities (1-hour vs 1-day)");
    // Same universe, different behavior windows: the "1-hour" graph sees the
    // first 1/8 of the sessions, the "1-day" graph all of them.
    let n_sessions = data.logs.len();
    let mut series_c = Vec::new();
    for (label, window) in [("1-hour", n_sessions / 8), ("1-day", n_sessions)] {
        let per_focal = data.focal_local_similarities_window(10, window, seed);
        let all: Vec<f32> = per_focal.into_iter().flatten().collect();
        let frac = |t: f32| all.iter().filter(|&&s| s < t).count() as f64 / all.len().max(1) as f64;
        println!(
            "{label:>8} graph: n={:<6} P(sim<0)={:.2}  P(sim<0.1)={:.2}  P(sim<0.5)={:.2}",
            all.len(),
            frac(0.0),
            frac(0.1),
            frac(0.5)
        );
        series_c.push(serde_json::json!({
            "graph": label, "n": all.len(),
            "p_below_0": frac(0.0), "p_below_0.1": frac(0.1), "p_below_0.5": frac(0.5)
        }));
    }
    println!("(paper shape: most similarities small; shorter-window graph more concentrated)");
    json.insert("fig4c".into(), serde_json::Value::Array(series_c));

    write_json("fig4_motivation", &serde_json::Value::Object(json));
}
