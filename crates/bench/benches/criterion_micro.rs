//! Criterion microbenchmarks for the performance-critical primitives:
//! alias-table vs linear weighted sampling (the §VI design choice), focal
//! top-k sampling, attention forward+backward, ANN queries, MinHash
//! signatures, and graph construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use std::hint::black_box;
use zoomer_core::autograd::Tape;
use zoomer_core::data::{TaobaoConfig, TaobaoData};
use zoomer_core::graph::{AliasTable, MinHasher};
use zoomer_core::sampler::{FocalBiasedSampler, FocalContext, NeighborSampler, UniformSampler};
use zoomer_core::serving::IvfIndex;
use zoomer_core::tensor::{seeded_rng, Matrix};

/// Linear-scan weighted sampling — the baseline the alias table replaces.
fn linear_weighted_sample(weights: &[f32], total: f32, rng: &mut impl Rng) -> usize {
    let mut pick = rng.gen::<f32>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if pick < w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

fn bench_alias_vs_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_sampling");
    for n in [16usize, 256, 4096] {
        let mut rng = seeded_rng(1);
        let weights: Vec<f32> = (0..n).map(|_| rng.gen_range(0.1..5.0)).collect();
        let total: f32 = weights.iter().sum();
        let table = AliasTable::new(&weights);
        group.bench_with_input(BenchmarkId::new("alias", n), &n, |b, _| {
            let mut rng = seeded_rng(2);
            b.iter(|| black_box(table.sample(&mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut rng = seeded_rng(2);
            b.iter(|| black_box(linear_weighted_sample(&weights, total, &mut rng)))
        });
    }
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let data = TaobaoData::generate(TaobaoConfig::tiny(5));
    let log = &data.logs[0];
    let focal = FocalContext::for_request(&data.graph, log.user, log.query);
    let mut group = c.benchmark_group("neighbor_sampling");
    group.bench_function("focal_topk_k10", |b| {
        let s = FocalBiasedSampler::default();
        let mut rng = seeded_rng(3);
        b.iter(|| black_box(s.sample(&data.graph, log.user, &focal, 10, &mut rng)))
    });
    group.bench_function("focal_stochastic_k10", |b| {
        let s = FocalBiasedSampler::stochastic(0.2);
        let mut rng = seeded_rng(3);
        b.iter(|| black_box(s.sample(&data.graph, log.user, &focal, 10, &mut rng)))
    });
    group.bench_function("uniform_k10", |b| {
        let mut rng = seeded_rng(3);
        b.iter(|| black_box(UniformSampler.sample(&data.graph, log.user, &focal, 10, &mut rng)))
    });
    group.finish();
}

fn bench_attention_forward_backward(c: &mut Criterion) {
    // A representative edge-attention block: 10 neighbors, d = 16.
    let d = 16;
    let n = 10;
    let mut rng = seeded_rng(7);
    let rand_m = |rng: &mut rand_chacha::ChaCha8Rng, r: usize, co: usize| {
        Matrix::from_vec(r, co, (0..r * co).map(|_| rng.gen_range(-0.5..0.5)).collect())
    };
    let zi = rand_m(&mut rng, 1, d);
    let zjs: Vec<Matrix> = (0..n).map(|_| rand_m(&mut rng, 1, d)).collect();
    let focal = rand_m(&mut rng, 1, d);
    let att = rand_m(&mut rng, 3 * d, 1);
    c.bench_function("edge_attention_fwd_bwd_n10_d16", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let zi_v = t.leaf(zi.clone());
            let c_v = t.leaf(focal.clone());
            let a_v = t.leaf(att.clone());
            let mut scores = Vec::with_capacity(n);
            let mut stacked = Vec::with_capacity(n);
            for zj in &zjs {
                let zj_v = t.leaf(zj.clone());
                stacked.push(zj_v);
                let pair = t.concat_cols(zi_v, zj_v);
                let input = t.concat_cols(pair, c_v);
                let s = t.matmul(input, a_v);
                scores.push(t.leaky_relu(s));
            }
            let col = t.concat_rows(&scores);
            let row = t.transpose(col);
            let alpha = t.softmax_rows(row);
            let stack = t.concat_rows(&stacked);
            let pooled = t.matmul(alpha, stack);
            let s = t.sum_all(pooled);
            let loss = t.hadamard(s, s);
            black_box(t.backward(loss));
        })
    });
}

fn bench_ann(c: &mut Criterion) {
    let mut rng = seeded_rng(11);
    let items: Vec<(u64, Vec<f32>)> =
        (0..5_000u64).map(|id| (id, (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect())).collect();
    let index = IvfIndex::build(&items, 64, 6, 11);
    let query: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut group = c.benchmark_group("ann_query_5k_items");
    for nprobe in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("nprobe", nprobe), &nprobe, |b, &np| {
            b.iter(|| black_box(index.search(&query, 100, np).expect("search")))
        });
    }
    group.bench_function("exact", |b| {
        b.iter(|| black_box(index.exact_search(&query, 100).expect("search")))
    });
    group.finish();
}

fn bench_minhash(c: &mut Criterion) {
    let hasher = MinHasher::new(32, 13);
    let terms: Vec<u32> = (0..40).collect();
    c.bench_function("minhash_signature_40terms_32hashes", |b| {
        b.iter(|| black_box(hasher.signature(&terms)))
    });
}

fn bench_graph_build(c: &mut Criterion) {
    c.bench_function("taobao_graph_build_tiny", |b| {
        b.iter(|| black_box(TaobaoData::generate(TaobaoConfig::tiny(17))))
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_alias_vs_linear,
        bench_samplers,
        bench_attention_forward_backward,
        bench_ann,
        bench_minhash,
        bench_graph_build
);
criterion_main!(micro);
