//! Table II — benchmarking on MovieLens.
//!
//! Paper protocol: heterogeneous user–tag–movie graph, (user, tag, movie)
//! triples with binary interaction labels, 1-hop aggregation, 80/20 split.
//! Baselines are the session-model family without heuristic samplers
//! (GCE-GNN, FGNN, STAMP, MCCF, HAN); Zoomer tops every metric, beating the
//! best baseline by ≈2 AUC points.

use zoomer_bench::{banner, write_json, BenchScale};
use zoomer_core::data::{split_examples, MovieLensConfig, MovieLensData};
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::tensor::seeded_rng;
use zoomer_core::train::eval::evaluate_auc;
use zoomer_core::train::{train, TrainerConfig};

/// Paper Table II reference values (AUC %, MAE, RMSE).
const PAPER: [(&str, f64, f64, f64); 6] = [
    ("GCE-GNN", 91.70, 0.3225, 0.4339),
    ("FGNN", 90.72, 0.3140, 0.3742),
    ("STAMP", 88.07, 0.3590, 0.3961),
    ("MCCF", 91.92, 0.4301, 0.4369),
    ("HAN", 90.55, 0.3449, 0.3961),
    ("ZOOMER", 93.79, 0.3014, 0.3760),
];

fn main() {
    let scale = BenchScale::from_env();
    let seed = 222;
    banner(
        "Table II — MovieLens benchmark",
        "paper: ZOOMER best on AUC (93.79) and MAE; ~2-point AUC lead over the best baseline",
        scale,
        seed,
    );
    let config = match scale {
        BenchScale::Smoke => MovieLensConfig::tiny(seed),
        BenchScale::Small => MovieLensConfig {
            seed,
            num_users: 900,
            num_movies: 1_100,
            num_tags: 50,
            ratings_per_user: 20,
            ..Default::default()
        },
        BenchScale::Full => MovieLensConfig { seed, ..Default::default() },
    };
    let data = MovieLensData::generate(config);
    let split = split_examples(data.examples.clone(), 0.8, seed);
    println!(
        "dataset: {} users / {} tags / {} movies, {} train + {} test examples\n",
        data.config.num_users,
        data.config.num_tags,
        data.config.num_movies,
        split.train.len(),
        split.test.len()
    );
    let dd = data.graph.features().dense_dim();
    let epochs = match scale {
        BenchScale::Smoke => 1,
        BenchScale::Small => 3,
        BenchScale::Full => 5,
    };

    println!(
        "{:<10} {:>9} {:>9} {:>9}   {:>11} {:>9} {:>9}",
        "model", "AUC", "MAE", "RMSE", "paper AUC", "p.MAE", "p.RMSE"
    );
    let mut rows = Vec::new();
    for &(name, p_auc, p_mae, p_rmse) in &PAPER {
        let preset = name.to_ascii_lowercase();
        let mut config = ModelConfig::preset(&preset, seed, dd).expect("preset");
        config.hops = 1; // paper: 1-hop aggregation on MovieLens
        let mut model = UnifiedCtrModel::new(config);
        let _ = train(
            &mut model,
            &data.graph,
            &split,
            &TrainerConfig { epochs, eval_sample: scale.eval_sample(), seed, ..Default::default() },
        );
        let mut rng = seeded_rng(seed);
        let test_cap = scale.eval_sample().min(split.test.len());
        let metrics = evaluate_auc(&mut model, &data.graph, &split.test[..test_cap], &mut rng);
        println!(
            "{:<10} {:>9.2} {:>9.4} {:>9.4}   {:>11.2} {:>9.4} {:>9.4}",
            name,
            metrics.auc() * 100.0,
            metrics.mae(),
            metrics.rmse(),
            p_auc,
            p_mae,
            p_rmse
        );
        rows.push(serde_json::json!({
            "model": name,
            "auc": metrics.auc() * 100.0, "mae": metrics.mae(), "rmse": metrics.rmse(),
            "paper_auc": p_auc, "paper_mae": p_mae, "paper_rmse": p_rmse,
        }));
    }
    println!("\n(paper shape: ZOOMER holds the best AUC; absolute values differ — synthetic data)");
    write_json("table2_movielens", &serde_json::Value::Array(rows));
}
