//! Table IV — production A/B test simulation.
//!
//! Paper: substituting the PinSage channel with Zoomer on 4 % of Taobao
//! search traffic lifted CTR +0.295 %, PPC +1.347 %, RPM +0.646 %.
//!
//! Here the "production traffic" is a held-out stream of simulated sessions
//! with ground-truth intents. Two retrieval channels — PinSage (control) and
//! Zoomer (treatment) — are each trained offline on the same logs, frozen,
//! and deployed; every request retrieves a slate whose clicks are drawn from
//! the generator's ground-truth click model, with per-item prices giving ad
//! revenue. We report the same three relative lifts.

use zoomer_bench::{banner, million_dataset, train_preset, write_json, BenchScale};
use zoomer_core::data::TaobaoData;
use zoomer_core::model::{CtrModel, UnifiedCtrModel};
use zoomer_core::tensor::seeded_rng;

/// Deterministic pseudo-price per item (log-ish spread, 1.0 – 11.0).
fn price(item: u32) -> f64 {
    let mut h = item as u64 ^ 0xABCD_EF01;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51AFD7ED558CCD);
    h ^= h >> 33;
    1.0 + (h % 1000) as f64 / 100.0
}

struct ChannelOutcome {
    impressions: u64,
    clicks: u64,
    revenue: f64,
}

impl ChannelOutcome {
    fn ctr(&self) -> f64 {
        self.clicks as f64 / self.impressions.max(1) as f64
    }
    fn ppc(&self) -> f64 {
        self.revenue / self.clicks.max(1) as f64
    }
    fn rpm(&self) -> f64 {
        self.revenue / self.impressions.max(1) as f64 * 1000.0
    }
}

/// Retrieve `slate` items for each request with the trained model's tower
/// embeddings (exact top-k over the pool; the ANN path is benchmarked in
/// fig9), then draw clicks from the generator's ground-truth click model.
fn run_channel(
    model: &mut UnifiedCtrModel,
    data: &TaobaoData,
    traffic: &[usize],
    slate: usize,
    seed: u64,
) -> ChannelOutcome {
    let items = data.item_nodes();
    let item_embs: Vec<(u32, Vec<f32>)> =
        items.iter().map(|&i| (i, model.item_embedding(&data.graph, i))).collect();
    let mut rng = seeded_rng(seed);
    // Common random numbers: the click coin for (session, item) is a
    // deterministic hash, so both channels see identical outcomes for
    // identical slate items — the standard variance-reduction technique for
    // paired A/B comparisons.
    let click_coin = |log_idx: usize, item: u32| -> f32 {
        let mut h = (log_idx as u64) << 32 | item as u64;
        h ^= seed;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
        h ^= h >> 33;
        (h >> 40) as f32 / (1u64 << 24) as f32
    };
    let mut out = ChannelOutcome { impressions: 0, clicks: 0, revenue: 0.0 };
    for &log_idx in traffic {
        let log = &data.logs[log_idx];
        let uq = model.uq_embedding(&data.graph, log.user, log.query, &mut rng);
        let mut scored: Vec<(u32, f32)> = item_embs
            .iter()
            .map(|(id, emb)| {
                let s: f32 = uq.iter().zip(emb).map(|(&a, &b)| a * b).sum();
                (*id, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for &(item, _) in scored.iter().take(slate) {
            out.impressions += 1;
            let p = data.ground_truth_ctr(&log.intent, item);
            if click_coin(log_idx, item) < p {
                out.clicks += 1;
                out.revenue += price(item);
            }
        }
    }
    out
}

fn main() {
    let scale = BenchScale::from_env();
    let seed = 404;
    banner(
        "Table IV — A/B test simulation (Zoomer vs PinSage channel)",
        "paper: CTR +0.295 %, PPC +1.347 %, RPM +0.646 %",
        scale,
        seed,
    );
    let (data, split) = million_dataset(scale, seed);

    println!("training the control channel (PinSage)…");
    let (mut pinsage, r1) = train_preset(
        &data,
        &split,
        "pinsage",
        seed,
        scale.train_steps(),
        scale.eval_sample(),
        None,
    );
    println!("  control AUC  = {:.4}", r1.final_auc);
    println!("training the treatment channel (Zoomer)…");
    let (mut zoomer, r2) =
        train_preset(&data, &split, "zoomer", seed, scale.train_steps(), scale.eval_sample(), None);
    println!("  treatment AUC = {:.4}", r2.final_auc);

    // 4 % of traffic → the treatment bucket; same-size control bucket.
    let n_traffic = match scale {
        BenchScale::Smoke => 100,
        BenchScale::Small => 1_000,
        BenchScale::Full => 3_000,
    };
    let traffic: Vec<usize> = (0..n_traffic.min(data.logs.len())).collect();
    let slate = 10;
    let control_out = run_channel(&mut pinsage, &data, &traffic, slate, seed ^ 1);
    let treatment_out = run_channel(&mut zoomer, &data, &traffic, slate, seed ^ 1);

    let lift = |t: f64, c: f64| (t - c) / c.max(1e-12) * 100.0;
    let ctr_lift = lift(treatment_out.ctr(), control_out.ctr());
    let ppc_lift = lift(treatment_out.ppc(), control_out.ppc());
    let rpm_lift = lift(treatment_out.rpm(), control_out.rpm());

    println!("\n{:>12} {:>12} {:>12} {:>12}", "channel", "CTR", "PPC", "RPM");
    println!(
        "{:>12} {:>12.4} {:>12.4} {:>12.2}",
        "PinSage",
        control_out.ctr(),
        control_out.ppc(),
        control_out.rpm()
    );
    println!(
        "{:>12} {:>12.4} {:>12.4} {:>12.2}",
        "ZOOMER",
        treatment_out.ctr(),
        treatment_out.ppc(),
        treatment_out.rpm()
    );
    println!(
        "\nmeasured lifts : CTR {ctr_lift:+.3} %   PPC {ppc_lift:+.3} %   RPM {rpm_lift:+.3} %"
    );
    println!("paper lifts    : CTR +0.295 %   PPC +1.347 %   RPM +0.646 %");
    println!("(paper shape: all three metrics lift when the channel switches to Zoomer)");

    write_json(
        "table4_ab_test",
        &serde_json::json!({
            "control": {"ctr": control_out.ctr(), "ppc": control_out.ppc(), "rpm": control_out.rpm(), "auc": r1.final_auc},
            "treatment": {"ctr": treatment_out.ctr(), "ppc": treatment_out.ppc(), "rpm": treatment_out.rpm(), "auc": r2.final_auc},
            "lift_pct": {"ctr": ctr_lift, "ppc": ppc_lift, "rpm": rpm_lift},
            "paper_lift_pct": {"ctr": 0.295, "ppc": 1.347, "rpm": 0.646},
        }),
    );
}
