//! Overload robustness — shed rate and admitted-request latency versus
//! offered QPS.
//!
//! Not a paper figure: the paper reports Fig 9's response-time curve but
//! never says what its serving tier does *past* saturation. This harness
//! answers that for our stack: a bounded admission queue plus a per-batch
//! deadline should keep admitted-request p99 near the budget and shed the
//! excess, instead of letting queueing delay grow without bound.
//!
//! Method: measure closed-loop capacity first, then sweep an open-loop
//! schedule at {0.25, 0.5, 1, 2, 5}x that capacity through a small bounded
//! queue with a deadline armed. Reported per row: offered QPS, shed rate,
//! admitted-request p50/p99, degraded answers, and errors.

use std::sync::Arc;
use std::time::Duration;

use zoomer_bench::{banner, million_dataset, write_json, BenchScale};
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::serving::{
    run_load, BackendKind, FrozenModel, LoadTestSpec, OnlineServer, ServingConfig, ShedPolicy,
};

fn main() {
    let scale = BenchScale::from_env();
    let seed = 911;
    banner(
        "Overload — shed rate & admitted p99 vs offered QPS",
        "bounded queue + deadline: shed the excess, keep admitted p99 near budget",
        scale,
        seed,
    );
    let (data, _) = million_dataset(scale, seed);
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, dd));
    let graph = Arc::new(
        zoomer_core::graph::read_snapshot(zoomer_core::graph::write_snapshot(&data.graph))
            .expect("snapshot roundtrip"),
    );
    let items = data.item_nodes();
    let deadline_ms = 20u64;
    let request_pool: Vec<(u32, u32)> = data.logs.iter().map(|l| (l.user, l.query)).collect();
    let warm: Vec<u32> = request_pool.iter().flat_map(|&(u, q)| [u, q]).collect();
    let threads = 4;
    let window_secs = match scale {
        BenchScale::Smoke => 0.4,
        BenchScale::Small => 1.5,
        BenchScale::Full => 3.0,
    };

    // The whole protocol (capacity probe, then the overload sweep) runs once
    // per retrieval backend: each backend has its own capacity and its own
    // degraded ladder (nprobe capping for IVF, beam capping for the
    // proximity graph, neither for the exact scan).
    let mut json_rows = Vec::new();
    for backend in [BackendKind::Ivf, BackendKind::Proximity, BackendKind::Exact] {
        let server = OnlineServer::builder()
            .graph(Arc::clone(&graph))
            .frozen(FrozenModel::from_model(&mut model, &graph))
            .item_pool(&items)
            .config(ServingConfig {
                backend,
                deadline: Some(Duration::from_millis(deadline_ms)),
                ..Default::default()
            })
            .seed(seed)
            .build()
            .expect("server build");
        server.warm_cache(&warm).expect("warm cache");

        // Closed-loop capacity at the same thread count the sweep serves
        // with.
        let probe: Vec<(u32, u32)> = request_pool.iter().cycle().take(2_000).copied().collect();
        let capacity_report =
            run_load(&server, &probe, &LoadTestSpec::closed().num_threads(threads))
                .expect("capacity probe");
        let capacity_qps = capacity_report.achieved_qps().max(1.0);
        println!(
            "\n-- backend: {} -- measured closed-loop capacity: {capacity_qps:.0} req/s ({threads} threads)",
            backend.name()
        );
        println!(
            "{:>7} {:>10} {:>9} {:>10} {:>10} {:>9} {:>8}",
            "load", "offered", "shed %", "adm p50", "adm p99", "degraded", "errors"
        );
        for mult in [0.25, 0.5, 1.0, 2.0, 5.0] {
            let qps = capacity_qps * mult;
            let n = ((qps * window_secs) as usize).clamp(100, 60_000);
            let requests: Vec<(u32, u32)> = request_pool.iter().cycle().take(n).copied().collect();
            let spec = LoadTestSpec::open(qps)
                .num_threads(threads)
                .batch_size(8)
                .queue_capacity(64)
                .shed(ShedPolicy::RejectNew);
            let report = run_load(&server, &requests, &spec).expect("overload run");
            println!(
                "{:>6.2}x {:>10.0} {:>8.1}% {:>10.3} {:>10.3} {:>9} {:>8}",
                mult,
                qps,
                report.shed_rate() * 100.0,
                report.latency.p50_ms,
                report.latency.p99_ms,
                report.degraded,
                report.errors
            );
            json_rows.push(serde_json::json!({
                "backend": backend.name(),
                "load_multiplier": mult, "offered_qps": qps, "offered": report.offered,
                "completed": report.completed, "shed": report.shed,
                "shed_rate": report.shed_rate(), "errors": report.errors,
                "panics": report.panics, "degraded": report.degraded,
                "deadline_exceeded": report.deadline_exceeded,
                "admitted_p50_ms": report.latency.p50_ms,
                "admitted_p99_ms": report.latency.p99_ms,
                "deadline_ms": deadline_ms, "queue_capacity": 64,
            }));
        }
    }
    println!(
        "\n(expected shape: sub-capacity rows shed ~0% and keep p99 well under the {deadline_ms} ms budget; past capacity the queue bounds admitted latency and the shed column absorbs the excess — per backend)"
    );
    write_json("fig_overload", &serde_json::Value::Array(json_rows));
}
