//! Overload robustness — shed rate and admitted-request latency versus
//! offered QPS.
//!
//! Not a paper figure: the paper reports Fig 9's response-time curve but
//! never says what its serving tier does *past* saturation. This harness
//! answers that for our stack: a bounded admission queue plus a per-batch
//! deadline should keep admitted-request p99 near the budget and shed the
//! excess, instead of letting queueing delay grow without bound.
//!
//! Method: measure closed-loop capacity first, then sweep an open-loop
//! schedule at {0.25, 0.5, 1, 2, 5}x that capacity through a small bounded
//! queue with a deadline armed. Reported per row: offered QPS, shed rate,
//! admitted-request p50/p99, degraded answers, and errors.

use std::sync::Arc;
use std::time::Duration;

use zoomer_bench::{banner, million_dataset, write_json, BenchScale};
use zoomer_core::graph::ShardingConfig;
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::serving::{
    run_load, BackendKind, BrownoutRung, FrozenModel, LoadTestSpec, OnlineServer, Query,
    ServingConfig, ShardedServer, ShedPolicy,
};

/// The four degraded-rung counter deltas (skip_widen, topk_shrunk,
/// budget_capped, fallback) out of a snapshot diff.
fn rung_deltas(diff: &zoomer_core::obs::Snapshot) -> [u64; 4] {
    [
        diff.counter("serve.degraded.skip_widen").unwrap_or(0),
        diff.counter("serve.degraded.topk_shrunk").unwrap_or(0),
        diff.counter("serve.degraded.budget_capped").unwrap_or(0),
        diff.counter("serve.degraded.fallback").unwrap_or(0),
    ]
}

fn main() {
    let scale = BenchScale::from_env();
    let seed = 911;
    banner(
        "Overload — shed rate & admitted p99 vs offered QPS",
        "bounded queue + deadline: shed the excess, keep admitted p99 near budget",
        scale,
        seed,
    );
    let (data, _) = million_dataset(scale, seed);
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, dd));
    let graph = Arc::new(
        zoomer_core::graph::read_snapshot(zoomer_core::graph::write_snapshot(&data.graph))
            .expect("snapshot roundtrip"),
    );
    let items = data.item_nodes();
    let deadline_ms = 20u64;
    let request_pool: Vec<Query> = data.logs.iter().map(|l| Query::new(l.user, l.query)).collect();
    let warm: Vec<u32> = request_pool.iter().flat_map(|q| [q.user, q.query]).collect();
    let threads = 4;
    let window_secs = match scale {
        BenchScale::Smoke => 0.4,
        BenchScale::Small => 1.5,
        BenchScale::Full => 3.0,
    };

    // The whole protocol (capacity probe, then the overload sweep) runs once
    // per retrieval backend: each backend has its own capacity and its own
    // degraded ladder (nprobe capping for IVF, beam capping for the
    // proximity graph, neither for the exact scan).
    let mut json_rows = Vec::new();
    for backend in [BackendKind::Ivf, BackendKind::Proximity, BackendKind::Exact] {
        let server = OnlineServer::builder()
            .graph(Arc::clone(&graph))
            .frozen(FrozenModel::from_model(&mut model, &graph))
            .item_pool(&items)
            .config(ServingConfig {
                backend,
                deadline: Some(Duration::from_millis(deadline_ms)),
                ..Default::default()
            })
            .seed(seed)
            .build()
            .expect("server build");
        server.warm_cache(&warm).expect("warm cache");

        // Closed-loop capacity at the same thread count the sweep serves
        // with.
        let probe: Vec<Query> = request_pool.iter().cycle().take(2_000).copied().collect();
        let capacity_report =
            run_load(&server, &probe, &LoadTestSpec::closed().num_threads(threads))
                .expect("capacity probe");
        let capacity_qps = capacity_report.achieved_qps().max(1.0);
        println!(
            "\n-- backend: {} -- measured closed-loop capacity: {capacity_qps:.0} req/s ({threads} threads)",
            backend.name()
        );
        println!(
            "{:>7} {:>10} {:>9} {:>10} {:>10} {:>9} {:>8} {:>17}",
            "load", "offered", "shed %", "adm p50", "adm p99", "degraded", "errors", "sw/tk/cap/fb"
        );
        for mult in [0.25, 0.5, 1.0, 2.0, 5.0] {
            let qps = capacity_qps * mult;
            let n = ((qps * window_secs) as usize).clamp(100, 60_000);
            let requests: Vec<Query> = request_pool.iter().cycle().take(n).copied().collect();
            let spec = LoadTestSpec::open(qps)
                .num_threads(threads)
                .batch_size(8)
                .queue_capacity(64)
                .shed(ShedPolicy::RejectNew);
            let before = server.metrics_registry().snapshot();
            let report = run_load(&server, &requests, &spec).expect("overload run");
            let [sw, tk, cap, fb] =
                rung_deltas(&server.metrics_registry().snapshot().since(&before));
            println!(
                "{:>6.2}x {:>10.0} {:>8.1}% {:>10.3} {:>10.3} {:>9} {:>8} {:>17}",
                mult,
                qps,
                report.shed_rate() * 100.0,
                report.latency.p50_ms,
                report.latency.p99_ms,
                report.degraded,
                report.errors,
                format!("{sw}/{tk}/{cap}/{fb}"),
            );
            json_rows.push(serde_json::json!({
                "backend": backend.name(),
                "load_multiplier": mult, "offered_qps": qps, "offered": report.offered,
                "completed": report.completed, "shed": report.shed,
                "shed_rate": report.shed_rate(), "errors": report.errors,
                "panics": report.panics, "degraded": report.degraded,
                "degraded_skip_widen": sw, "degraded_topk_shrunk": tk,
                "degraded_budget_capped": cap, "degraded_fallback": fb,
                "deadline_exceeded": report.deadline_exceeded,
                "admitted_p50_ms": report.latency.p50_ms,
                "admitted_p99_ms": report.latency.p99_ms,
                "deadline_ms": deadline_ms, "queue_capacity": 64,
            }));
        }

        // Every rung, forced, on one warm batch: pins that each ladder rung
        // is reachable and counted on this backend regardless of which rungs
        // the sweep's deadlines happened to select organically.
        let batch: Vec<Query> = request_pool.iter().take(8).copied().collect();
        println!("   forced ladder (batch of {}):", batch.len());
        for rung in BrownoutRung::ALL {
            let before = server.metrics_registry().snapshot();
            let rows = server.handle_batch_scored_forced(&batch, rung).expect("forced rung");
            let [sw, tk, cap, fb] =
                rung_deltas(&server.metrics_registry().snapshot().since(&before));
            let items: usize = rows.iter().map(|r| r.items.len()).sum();
            println!(
                "   {:>12}: {items:>4} items, counters sw/tk/cap/fb = {sw}/{tk}/{cap}/{fb}",
                rung.name()
            );
            json_rows.push(serde_json::json!({
                "sweep": "forced_ladder", "backend": backend.name(),
                "rung": rung.name(), "batch_size": batch.len(), "items": items,
                "degraded_skip_widen": sw, "degraded_topk_shrunk": tk,
                "degraded_budget_capped": cap, "degraded_fallback": fb,
            }));
        }
    }
    // Scatter-gather capacity: the same closed-loop probe across shard
    // counts {1, 2, 4, 8}. The sweep ranks through the exact backend at
    // batch 16: exact rank is O(pool / num_shards) per shard, so shard
    // count buys real parallel rank work, and batching amortizes the
    // per-hop scatter cost. One shard pins the pure router overhead
    // (results there are bit-identical to the un-sharded server, so any
    // capacity gap is router cost alone). Router-side gather/merge timings
    // land in `serve.router.*`; per-shard rank in `serve.shard.N.rank_ns`.
    //
    // Two columns tell the story on any machine: `req/s` is wall-clock
    // capacity, which only crosses over above the single-shard baseline
    // when the host grants >= num_shards cores (shard workers are real
    // threads); `rank p50/shard` is the per-shard rank-stage time, which
    // shrinks ~N-fold with shard count regardless of core count — the
    // quantity the scatter actually divides.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "\n== Scatter-gather capacity vs shard count (exact backend, batch 16, {threads} threads, {cores} core(s)) =="
    );
    if cores < 4 {
        println!(
            "(note: {cores} core(s) available — shard workers serialize, so expect req/s to \
             fall with shard count here while rank p50/shard still splits ~N-fold; the \
             capacity crossover needs >= num_shards cores)"
        );
    }
    println!(
        "{:>7} {:>12} {:>10} {:>10} {:>16}",
        "shards", "req/s", "p50 ms", "p99 ms", "rank p50/shard"
    );
    for num_shards in [1usize, 2, 4, 8] {
        let registry = Arc::new(zoomer_core::obs::MetricsRegistry::enabled());
        let sharded = ShardedServer::build(
            OnlineServer::builder()
                .graph(Arc::clone(&graph))
                .frozen(FrozenModel::from_model(&mut model, &graph))
                .item_pool(&items)
                .config(ServingConfig {
                    backend: BackendKind::Exact,
                    sharding: ShardingConfig { num_shards, replicas_per_shard: 2 },
                    ..Default::default()
                })
                .seed(seed)
                .metrics(Arc::clone(&registry)),
        )
        .expect("sharded build");
        sharded.warm_cache(&warm).expect("warm cache");
        let probe: Vec<Query> = request_pool.iter().cycle().take(4_000).copied().collect();
        let spec = LoadTestSpec::closed().num_threads(threads).batch_size(16);
        let report = run_load(&sharded, &probe, &spec).expect("sharded capacity probe");
        // The rank stage's critical path per batch is the slowest shard's
        // p50; report the worst shard so the split is judged pessimistically.
        let snap = registry.snapshot();
        let rank_p50_ns = (0..num_shards)
            .filter_map(|i| snap.histogram(&format!("serve.shard.{i}.rank_ns")).map(|h| h.p50()))
            .max()
            .unwrap_or(0);
        println!(
            "{:>7} {:>12.0} {:>10.3} {:>10.3} {:>13.3} ms",
            num_shards,
            report.achieved_qps(),
            report.latency.p50_ms,
            report.latency.p99_ms,
            rank_p50_ns as f64 / 1e6,
        );
        json_rows.push(serde_json::json!({
            "sweep": "shard_capacity", "num_shards": num_shards,
            "replicas_per_shard": 2, "backend": "exact", "batch_size": 16,
            "available_parallelism": cores,
            "capacity_qps": report.achieved_qps(),
            "p50_ms": report.latency.p50_ms, "p99_ms": report.latency.p99_ms,
            "shard_rank_p50_ns": rank_p50_ns,
        }));
    }
    println!(
        "\n(expected shape: sub-capacity rows shed ~0% and keep p99 well under the {deadline_ms} ms budget; past capacity the queue bounds admitted latency and the shed column absorbs the excess — per backend)"
    );
    write_json("fig_overload", &serde_json::Value::Array(json_rows));
}
