//! Observability overhead guard — closed-loop `handle_batch` throughput with
//! the metrics registry disabled vs enabled, judged against the tracked
//! `BENCH_kernels.json` baseline.
//!
//! PR 4 acceptance: enabling per-stage recording (four `StageTimer` spans +
//! a handful of relaxed atomics per batch) must cost <= 2% of batch-16
//! closed-loop requests/sec. Two comparisons are printed:
//!
//! 1. enabled vs disabled, same binary, interleaved pairs — the direct A/B
//!    that the 2% budget applies to;
//! 2. enabled vs the `handle_batch` row of `BENCH_kernels.json`, measured
//!    with the same hot-batch protocol that row was recorded with —
//!    informational drift (absolute numbers are machine-load dependent).
//!
//! `ZOOMER_BENCH_ENFORCE=1` turns budget violations into a non-zero exit.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use zoomer_bench::{banner, write_json, BenchScale};
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::obs::MetricsRegistry;
use zoomer_core::serving::{FrozenModel, OnlineServer, Query, ServingConfig};
use zoomer_data::{TaobaoConfig, TaobaoData};

/// Allowed relative slowdown of the enabled-registry run.
const BUDGET: f64 = 0.02;

/// Requests/sec of one closed-loop pass over `requests`.
fn closed_loop_pass(server: &OnlineServer, requests: &[Query], batch: usize) -> f64 {
    let t0 = Instant::now();
    for chunk in requests.chunks(batch) {
        std::hint::black_box(server.handle_batch(chunk).expect("handle_batch"));
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    requests.len() as f64 / secs
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

/// Median requests/sec timing one warm 16-request batch back-to-back — the
/// same protocol `kernels.rs` used to record the `BENCH_kernels.json` row,
/// so the two numbers compare directly.
fn hot_batch_rps(server: &OnlineServer, batch_reqs: &[Query], iters: usize, reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(server.handle_batch(batch_reqs).expect("handle_batch"));
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        samples.push((batch_reqs.len() * iters) as f64 / secs);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

/// batch-16 `requests_per_sec` from the tracked kernel baseline, if present.
///
/// The vendored `serde_json` stub only serializes, so this scans the known
/// `kernels.rs`-written layout: inside the `"handle_batch"` array, the row
/// with `"batch": 16` is followed by its `"requests_per_sec"` value.
fn baseline_batch16_rps() -> Option<f64> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    let text = std::fs::read_to_string(path).ok()?;
    let section = &text[text.find("\"handle_batch\"")?..];
    let row = &section[section.find("\"batch\": 16")?..];
    let tail = &row[row.find("\"requests_per_sec\":")? + "\"requests_per_sec\":".len()..];
    let num: String = tail
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E')
        .collect();
    num.parse().ok()
}

fn build_server(
    data: &TaobaoData,
    seed: u64,
    registry: Option<Arc<MetricsRegistry>>,
) -> OnlineServer {
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, dd));
    let graph = Arc::new(
        zoomer_core::graph::read_snapshot(zoomer_core::graph::write_snapshot(&data.graph))
            .expect("snapshot roundtrip"),
    );
    let items = data.item_nodes();
    let frozen = FrozenModel::from_model(&mut model, &graph);
    let mut builder = OnlineServer::builder()
        .graph(graph)
        .frozen(frozen)
        .item_pool(&items)
        .config(ServingConfig::default())
        .seed(seed);
    if let Some(registry) = registry {
        builder = builder.metrics(registry);
    }
    builder.build().expect("server build")
}

fn main() {
    let scale = BenchScale::from_env();
    let smoke = scale == BenchScale::Smoke;
    let seed = 2121;
    banner(
        "Observability overhead — handle_batch req/s, metrics off vs on",
        "PR 4 acceptance: enabled registry costs <= 2% closed-loop throughput",
        scale,
        seed,
    );

    let data = TaobaoData::generate(if smoke {
        TaobaoConfig::tiny(seed)
    } else {
        TaobaoConfig::default_with_seed(seed)
    });
    let pool: Vec<Query> = data.logs.iter().map(|l| Query::new(l.user, l.query)).collect();
    let n = if smoke { 512 } else { 8_192 };
    let requests: Vec<Query> = pool.iter().cycle().take(n).copied().collect();
    let warm: Vec<u32> = requests.iter().flat_map(|q| [q.user, q.query]).collect();
    let reps = if smoke { 5 } else { 15 };
    let batch = 16;

    let disabled = build_server(&data, seed, None);
    disabled.warm_cache(&warm).expect("warm cache");
    let registry = Arc::new(MetricsRegistry::enabled());
    let enabled = build_server(&data, seed, Some(Arc::clone(&registry)));
    enabled.warm_cache(&warm).expect("warm cache");

    // Paired, interleaved passes: each rep measures disabled then enabled
    // back to back, and the budget is judged on the median per-pair ratio.
    // Machine-load drift hits both sides of a pair, so it cancels — unlike
    // an all-A-then-all-B protocol.
    let _ = closed_loop_pass(&disabled, &requests, batch);
    let _ = closed_loop_pass(&enabled, &requests, batch);
    let mut off_samples = Vec::with_capacity(reps);
    let mut on_samples = Vec::with_capacity(reps);
    let mut pair_overheads = Vec::with_capacity(reps);
    for _ in 0..reps {
        let off = closed_loop_pass(&disabled, &requests, batch);
        let on = closed_loop_pass(&enabled, &requests, batch);
        pair_overheads.push((off - on) / off.max(1e-9));
        off_samples.push(off);
        on_samples.push(on);
    }
    let off_rps = median(off_samples);
    let on_rps = median(on_samples);
    let overhead = median(pair_overheads);
    println!("\nbatch {batch} closed loop over {n} requests, {reps} interleaved pairs:");
    println!("  metrics disabled : {off_rps:>12.0} req/s (median)");
    println!("  metrics enabled  : {on_rps:>12.0} req/s (median)");
    println!(
        "  overhead         : {:>11.2}% (median per-pair; budget {:.0}%)",
        overhead * 100.0,
        BUDGET * 100.0
    );

    // Sanity: the enabled run actually recorded all four stages.
    let snap = registry.snapshot();
    for stage in [
        "serve.stage.cache_resolve_ns",
        "serve.stage.embed_ns",
        "serve.stage.ann_probe_ns",
        "serve.stage.rank_ns",
    ] {
        let count = snap.histogram(stage).map_or(0, |h| h.count);
        assert!(count > 0, "{stage} recorded nothing — gating is broken");
    }

    // Baseline comparison on the kernels.rs protocol: one warm batch, timed
    // back-to-back. This is the number BENCH_kernels.json records.
    let hot: Vec<Query> = pool.iter().cycle().take(batch).copied().collect();
    let iters = if smoke { 32 } else { 256 };
    let hot_on_rps = hot_batch_rps(&enabled, &hot, iters, reps);
    println!("  hot-batch enabled: {hot_on_rps:>12.0} req/s (kernels.rs protocol)");
    let baseline = baseline_batch16_rps();
    let mut baseline_regression = None;
    match baseline {
        Some(base) => {
            let vs_base = (base - hot_on_rps) / base.max(1e-9);
            baseline_regression = Some(vs_base);
            println!(
                "  vs BENCH_kernels.json batch-16 baseline ({base:.0} req/s): {:+.2}%",
                -vs_base * 100.0
            );
        }
        None => println!("  (no BENCH_kernels.json baseline found — skipping drift check)"),
    }

    write_json(
        "obs_overhead",
        &serde_json::json!({
            "scale": scale.name(),
            "batch": batch,
            "requests": n,
            "disabled_rps": off_rps,
            "enabled_rps": on_rps,
            "overhead_fraction": overhead,
            "budget_fraction": BUDGET,
            "hot_batch_enabled_rps": hot_on_rps,
            "baseline_batch16_rps": baseline.map_or(serde_json::Value::Null, Into::into),
            "baseline_regression_fraction":
                baseline_regression.map_or(serde_json::Value::Null, Into::into),
        }),
    );

    let enforce = std::env::var("ZOOMER_BENCH_ENFORCE").is_ok_and(|v| v == "1");
    if overhead > BUDGET {
        println!(
            "\nFAIL: metrics overhead {:.2}% exceeds {:.0}%",
            overhead * 100.0,
            BUDGET * 100.0
        );
        if enforce {
            std::process::exit(1);
        }
        println!("(advisory: set ZOOMER_BENCH_ENFORCE=1 to make this a hard failure)");
    } else {
        println!("\nOK: metrics overhead within the {:.0}% budget", BUDGET * 100.0);
    }
}
