//! Search backends — recall@10 vs query latency vs build cost, per backend.
//!
//! Not a paper figure: the paper serves IVF only. With retrieval behind the
//! `SearchBackend` trait this harness measures what each backend actually
//! trades: the IVF probe sweeps `nprobe`, the relevance proximity graph
//! sweeps its beam width (one graph build, re-aimed per row), and the exact
//! flat scan anchors recall = 1. Ground truth is the `ExactSearch` oracle
//! over the same frozen-tower embeddings.
//!
//! Backends are built directly from the item embeddings — not through
//! `OnlineServer` — because the server widens under-full probe results with
//! an exact scan, which would silently inflate the approximate backends'
//! measured recall.
//!
//! At `small`/`full` scale the results are also written to the repo-root
//! `BENCH_backends.json` baseline (the acceptance record that the proximity
//! graph reaches IVF recall@10 at some beam width).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use zoomer_bench::{banner, million_dataset, write_json, BenchScale};
use zoomer_core::data::{ScaleTier, TaobaoData};
use zoomer_core::graph::{read_snapshot, write_snapshot};
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::obs::MetricsRegistry;
use zoomer_core::serving::{
    ExactSearch, FrozenModel, IvfIndex, ProximityGraph, QuantizedIvf, SearchBackend,
    DEFAULT_RERANK_FACTOR,
};
use zoomer_core::tensor::Matrix;

/// Recall@k of `got` rows against the oracle rows (id overlap).
fn recall_at_k(got: &[Vec<(u64, f32)>], truth: &[Vec<(u64, f32)>]) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for (g, t) in got.iter().zip(truth) {
        let ids: std::collections::HashSet<u64> = g.iter().map(|&(id, _)| id).collect();
        for &(id, _) in t {
            total += 1;
            if ids.contains(&id) {
                hits += 1;
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

/// Mean per-query latency of `search_batch` over `reps` passes, in µs.
fn query_us(backend: &dyn SearchBackend, queries: &Matrix, k: usize, reps: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(backend.search_batch(queries, k).expect("search"));
    }
    t0.elapsed().as_secs_f64() * 1e6 / (reps * queries.rows()) as f64
}

fn main() {
    let scale = BenchScale::from_env();
    let seed = 913;
    banner(
        "Search backends — recall@10 vs latency vs build cost",
        "acceptance: proximity graph reaches IVF recall@10 at some beam width",
        scale,
        seed,
    );
    let (data, _) = million_dataset(scale, seed);
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, dd));
    let frozen = FrozenModel::from_model(&mut model, &data.graph);
    let item_nodes = data.item_nodes();
    let item_matrix = frozen.item_embeddings(&item_nodes);
    let items: Vec<(u64, Vec<f32>)> = item_nodes
        .iter()
        .enumerate()
        .map(|(r, &i)| (i as u64, item_matrix.row(r).to_vec()))
        .collect();

    // The fig9 workload's request vectors: query nodes embedded through the
    // frozen online tower (base vector — no cached neighborhood, the same
    // embedding the offline posting ranking scores).
    let (n_queries, reps) = match scale {
        BenchScale::Smoke => (50usize, 3usize),
        BenchScale::Small => (200, 10),
        BenchScale::Full => (400, 20),
    };
    let query_nodes = data.graph.nodes_of_type(zoomer_core::graph::NodeType::Query);
    let mut queries = Matrix::zeros(query_nodes.len().min(n_queries), frozen.embed_dim());
    for (r, &q) in query_nodes.iter().take(queries.rows()).enumerate() {
        queries.row_mut(r).copy_from_slice(&frozen.online_embedding(q, &[], &[]));
    }
    let k = 10usize;
    println!("\npool: {} items, dim {}, {} queries, k = {k}", items.len(), dd, queries.rows());

    // Ground truth + the exact backend's own row.
    let t0 = Instant::now();
    let oracle = ExactSearch::build(&items);
    let exact_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let truth = oracle.search_batch(&queries, k).expect("oracle");

    println!(
        "\n{:>10} {:>12} {:>10} {:>12} {:>10}",
        "backend", "budget", "recall@10", "query us", "build ms"
    );
    let mut json_rows = Vec::new();
    let mut row =
        |backend: &str, budget_name: &str, budget: usize, recall: f64, us: f64, build_ms: f64| {
            println!(
                "{:>10} {:>9}={:<3} {:>9.3} {:>12.1} {:>10.1}",
                backend, budget_name, budget, recall, us, build_ms
            );
            json_rows.push(serde_json::json!({
                "backend": backend, "budget_name": budget_name, "budget": budget,
                "recall_at_10": recall, "query_us": us, "build_ms": build_ms,
            }));
        };

    // Exact scan: recall 1 by construction, the latency/build anchor.
    let us = query_us(&oracle, &queries, k, reps);
    row("exact", "pool", items.len(), 1.0, us, exact_build_ms);

    // IVF: one build, nprobe sweep.
    let t0 = Instant::now();
    let nlist = 32usize.min(((items.len() as f64).sqrt().ceil()) as usize).max(1);
    let ivf = IvfIndex::build(&items, nlist, 8, seed);
    let ivf_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut ivf_best_recall = 0.0f64;
    let mut ivf_default_recall = 0.0f64;
    for nprobe in [1usize, 2, 4, 8, 16] {
        let nprobe = nprobe.min(nlist);
        let t0 = Instant::now();
        let mut got = Vec::new();
        for _ in 0..reps {
            got = ivf.search_batch(&queries, k, nprobe).expect("ivf");
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / (reps * queries.rows()) as f64;
        let recall = recall_at_k(&got, &truth);
        ivf_best_recall = ivf_best_recall.max(recall);
        if nprobe == 4 {
            ivf_default_recall = recall;
        }
        row("ivf", "nprobe", nprobe, recall, us, ivf_build_ms);
    }

    // Proximity graph: one build (the graph does not depend on the beam),
    // beam-width sweep via `set_beam_width`.
    let t0 = Instant::now();
    let mut graph = ProximityGraph::build(&items, 12, 32);
    let graph_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut best_beam_recall = 0.0f64;
    for beam in [8usize, 16, 32, 64, 128, 256] {
        graph.set_beam_width(beam);
        let us = query_us(&graph, &queries, k, reps);
        let got = graph.search_batch(&queries, k).expect("proximity");
        let recall = recall_at_k(&got, &truth);
        best_beam_recall = best_beam_recall.max(recall);
        row("proximity", "beam", beam, recall, us, graph_build_ms);
    }

    // Quantized IVF: adopt the f32 index's partition (equal nprobe ⇒ the
    // same lists probed, so recall deltas measure quantization alone) and
    // sweep the same budgets. Probe-volume counters turn into bytes/query:
    // the int8 phase streams codes (1 B/elem) + per-vector params (12 B),
    // the rerank touches shortlist f32 rows; the f32 IVF streams 4 B/elem
    // over the same candidate set.
    let registry = MetricsRegistry::enabled();
    let t0 = Instant::now();
    let mut quant = QuantizedIvf::from_ivf(&ivf, 4, DEFAULT_RERANK_FACTOR);
    let quant_build_ms = t0.elapsed().as_secs_f64() * 1e3 + ivf_build_ms;
    quant.attach_metrics(&registry);
    let mem = quant.memory_footprint();
    let counter = |name: &str| -> u64 {
        registry.snapshot().counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
    };
    let mut quant_default_recall = 0.0f64;
    let mut quant_default_bytes_per_query = 0.0f64;
    let mut ivf_default_bytes_per_query = 0.0f64;
    for nprobe in [1usize, 2, 4, 8, 16] {
        let nprobe = nprobe.min(nlist);
        quant.set_nprobe(nprobe);
        let (i8_before, rr_before) =
            (counter("serve.backend.quant.scored_i8"), counter("serve.backend.quant.reranked"));
        let us = query_us(&quant, &queries, k, reps);
        let got = quant.search_batch(&queries, k).expect("quantized");
        let recall = recall_at_k(&got, &truth);
        let scanned = counter("serve.backend.quant.scored_i8") - i8_before;
        let reranked = counter("serve.backend.quant.reranked") - rr_before;
        let passes = ((reps + 1) * queries.rows()) as f64;
        let bytes_per_query =
            (scanned as f64 * (dd + 12) as f64 + reranked as f64 * dd as f64 * 4.0) / passes;
        if nprobe == 4 {
            quant_default_recall = recall;
            quant_default_bytes_per_query = bytes_per_query;
            ivf_default_bytes_per_query = scanned as f64 * dd as f64 * 4.0 / passes;
        }
        row("quantized", "nprobe", nprobe, recall, us, quant_build_ms);
    }

    println!(
        "\nproximity best recall@10: {best_beam_recall:.3} | IVF best (nprobe<=16): {ivf_best_recall:.3} | IVF default (nprobe=4): {ivf_default_recall:.3}"
    );
    let acceptance = best_beam_recall >= ivf_default_recall;
    println!(
        "acceptance (proximity >= IVF default recall@10 at some beam): {}",
        if acceptance { "PASS" } else { "FAIL" }
    );
    let quant_acceptance = quant_default_recall >= ivf_default_recall - 0.01;
    println!(
        "quantized: {:.1}x smaller embedding store, {:.0} vs {:.0} B/query at nprobe=4, recall {:.3} vs f32 {:.3}",
        mem.compression_ratio(),
        quant_default_bytes_per_query,
        ivf_default_bytes_per_query,
        quant_default_recall,
        ivf_default_recall,
    );
    println!(
        "acceptance (quantized recall@10 within 1% of f32 IVF at equal nprobe): {}",
        if quant_acceptance { "PASS" } else { "FAIL" }
    );

    // The billion tier, actually instantiated: generate the graph the
    // memory-scaling story targets (scaled to the preset; ZOOMER_TIER_SCALE
    // multiplies further — 10× the full preset is the advertised ≈1.2 M
    // nodes), snapshot it through the v2 zero-copy format, and account the
    // quantized item store.
    let tier_factor = match scale {
        BenchScale::Smoke => 0.02,
        BenchScale::Small => 0.25,
        BenchScale::Full => 1.0,
    } * ScaleTier::env_scale();
    let tier_cfg = ScaleTier::Billion.config_scaled(seed, tier_factor);
    let tier_sessions = tier_cfg.num_sessions;
    let t0 = Instant::now();
    let tier = TaobaoData::generate(tier_cfg);
    let tier_gen_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let snap = write_snapshot(&tier.graph);
    let tier_write_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snap_len = snap.len();
    let t0 = Instant::now();
    let reloaded = read_snapshot(snap).expect("billion-tier snapshot");
    let tier_load_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(reloaded.num_nodes(), tier.graph.num_nodes());
    let tier_dd = tier.graph.features().dense_dim();
    let mut tier_model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, tier_dd));
    let tier_frozen = FrozenModel::from_model(&mut tier_model, &tier.graph);
    let tier_items_nodes = tier.item_nodes();
    let tier_matrix = tier_frozen.item_embeddings(&tier_items_nodes);
    let tier_items: Vec<(u64, Vec<f32>)> = tier_items_nodes
        .iter()
        .enumerate()
        .map(|(r, &i)| (i as u64, tier_matrix.row(r).to_vec()))
        .collect();
    let tier_nlist = 64usize.min(((tier_items.len() as f64).sqrt().ceil()) as usize).max(1);
    let tier_quant =
        QuantizedIvf::build(&tier_items, tier_nlist, 8, seed, 4, DEFAULT_RERANK_FACTOR);
    let tier_mem = tier_quant.memory_footprint();
    println!(
        "\nbillion tier (factor {tier_factor:.2}): {} nodes, {} sessions, generated in {tier_gen_s:.1}s",
        tier.graph.num_nodes(),
        tier_sessions,
    );
    println!(
        "  snapshot v2: {:.1} MiB, write {tier_write_ms:.0} ms, zero-copy load {tier_load_ms:.0} ms",
        snap_len as f64 / (1024.0 * 1024.0),
    );
    println!(
        "  quantized item store: {:.2} MiB codes (+{:.2} MiB params) vs {:.2} MiB f32 ({:.1}x)",
        tier_mem.code_bytes as f64 / (1024.0 * 1024.0),
        tier_mem.param_bytes as f64 / (1024.0 * 1024.0),
        tier_mem.rerank_bytes as f64 / (1024.0 * 1024.0),
        tier_mem.compression_ratio(),
    );

    let json = serde_json::json!({
        "scale": scale.name(),
        "pool_items": items.len(),
        "queries": queries.rows(),
        "k": k,
        "rows": json_rows,
        "proximity_best_recall_at_10": best_beam_recall,
        "ivf_default_recall_at_10": ivf_default_recall,
        "ivf_best_recall_at_10": ivf_best_recall,
        "proximity_reaches_ivf_recall": acceptance,
        "quant_default_recall_at_10": quant_default_recall,
        "quant_within_1pct_of_ivf": quant_acceptance,
        "quant_compression_ratio": mem.compression_ratio(),
        "quant_bytes_per_query_nprobe4": quant_default_bytes_per_query,
        "ivf_bytes_per_query_nprobe4": ivf_default_bytes_per_query,
        "billion_tier": {
            "factor": tier_factor,
            "nodes": tier.graph.num_nodes(),
            "sessions": tier_sessions,
            "generate_s": tier_gen_s,
            "snapshot_bytes": snap_len,
            "snapshot_write_ms": tier_write_ms,
            "snapshot_load_ms": tier_load_ms,
            "quant_code_bytes": tier_mem.code_bytes,
            "quant_rerank_bytes": tier_mem.rerank_bytes,
            "quant_compression_ratio": tier_mem.compression_ratio(),
        },
    });
    write_json("backends", &json);
    if scale != BenchScale::Smoke {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_backends.json");
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", serde_json::to_string_pretty(&json).unwrap_or_default());
                println!("(baseline written to {})", path.display());
            }
            Err(e) => println!("(could not write {}: {e})", path.display()),
        }
    }
}
