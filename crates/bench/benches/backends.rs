//! Search backends — recall@10 vs query latency vs build cost, per backend.
//!
//! Not a paper figure: the paper serves IVF only. With retrieval behind the
//! `SearchBackend` trait this harness measures what each backend actually
//! trades: the IVF probe sweeps `nprobe`, the relevance proximity graph
//! sweeps its beam width (one graph build, re-aimed per row), and the exact
//! flat scan anchors recall = 1. Ground truth is the `ExactSearch` oracle
//! over the same frozen-tower embeddings.
//!
//! Backends are built directly from the item embeddings — not through
//! `OnlineServer` — because the server widens under-full probe results with
//! an exact scan, which would silently inflate the approximate backends'
//! measured recall.
//!
//! At `small`/`full` scale the results are also written to the repo-root
//! `BENCH_backends.json` baseline (the acceptance record that the proximity
//! graph reaches IVF recall@10 at some beam width).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use zoomer_bench::{banner, million_dataset, write_json, BenchScale};
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::serving::{ExactSearch, FrozenModel, IvfIndex, ProximityGraph, SearchBackend};
use zoomer_core::tensor::Matrix;

/// Recall@k of `got` rows against the oracle rows (id overlap).
fn recall_at_k(got: &[Vec<(u64, f32)>], truth: &[Vec<(u64, f32)>]) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for (g, t) in got.iter().zip(truth) {
        let ids: std::collections::HashSet<u64> = g.iter().map(|&(id, _)| id).collect();
        for &(id, _) in t {
            total += 1;
            if ids.contains(&id) {
                hits += 1;
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

/// Mean per-query latency of `search_batch` over `reps` passes, in µs.
fn query_us(backend: &dyn SearchBackend, queries: &Matrix, k: usize, reps: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(backend.search_batch(queries, k).expect("search"));
    }
    t0.elapsed().as_secs_f64() * 1e6 / (reps * queries.rows()) as f64
}

fn main() {
    let scale = BenchScale::from_env();
    let seed = 913;
    banner(
        "Search backends — recall@10 vs latency vs build cost",
        "acceptance: proximity graph reaches IVF recall@10 at some beam width",
        scale,
        seed,
    );
    let (data, _) = million_dataset(scale, seed);
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, dd));
    let frozen = FrozenModel::from_model(&mut model, &data.graph);
    let item_nodes = data.item_nodes();
    let item_matrix = frozen.item_embeddings(&item_nodes);
    let items: Vec<(u64, Vec<f32>)> = item_nodes
        .iter()
        .enumerate()
        .map(|(r, &i)| (i as u64, item_matrix.row(r).to_vec()))
        .collect();

    // The fig9 workload's request vectors: query nodes embedded through the
    // frozen online tower (base vector — no cached neighborhood, the same
    // embedding the offline posting ranking scores).
    let (n_queries, reps) = match scale {
        BenchScale::Smoke => (50usize, 3usize),
        BenchScale::Small => (200, 10),
        BenchScale::Full => (400, 20),
    };
    let query_nodes = data.graph.nodes_of_type(zoomer_core::graph::NodeType::Query);
    let mut queries = Matrix::zeros(query_nodes.len().min(n_queries), frozen.embed_dim());
    for (r, &q) in query_nodes.iter().take(queries.rows()).enumerate() {
        queries.row_mut(r).copy_from_slice(&frozen.online_embedding(q, &[], &[]));
    }
    let k = 10usize;
    println!("\npool: {} items, dim {}, {} queries, k = {k}", items.len(), dd, queries.rows());

    // Ground truth + the exact backend's own row.
    let t0 = Instant::now();
    let oracle = ExactSearch::build(&items);
    let exact_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let truth = oracle.search_batch(&queries, k).expect("oracle");

    println!(
        "\n{:>10} {:>12} {:>10} {:>12} {:>10}",
        "backend", "budget", "recall@10", "query us", "build ms"
    );
    let mut json_rows = Vec::new();
    let mut row =
        |backend: &str, budget_name: &str, budget: usize, recall: f64, us: f64, build_ms: f64| {
            println!(
                "{:>10} {:>9}={:<3} {:>9.3} {:>12.1} {:>10.1}",
                backend, budget_name, budget, recall, us, build_ms
            );
            json_rows.push(serde_json::json!({
                "backend": backend, "budget_name": budget_name, "budget": budget,
                "recall_at_10": recall, "query_us": us, "build_ms": build_ms,
            }));
        };

    // Exact scan: recall 1 by construction, the latency/build anchor.
    let us = query_us(&oracle, &queries, k, reps);
    row("exact", "pool", items.len(), 1.0, us, exact_build_ms);

    // IVF: one build, nprobe sweep.
    let t0 = Instant::now();
    let nlist = 32usize.min(((items.len() as f64).sqrt().ceil()) as usize).max(1);
    let ivf = IvfIndex::build(&items, nlist, 8, seed);
    let ivf_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut ivf_best_recall = 0.0f64;
    let mut ivf_default_recall = 0.0f64;
    for nprobe in [1usize, 2, 4, 8, 16] {
        let nprobe = nprobe.min(nlist);
        let t0 = Instant::now();
        let mut got = Vec::new();
        for _ in 0..reps {
            got = ivf.search_batch(&queries, k, nprobe).expect("ivf");
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / (reps * queries.rows()) as f64;
        let recall = recall_at_k(&got, &truth);
        ivf_best_recall = ivf_best_recall.max(recall);
        if nprobe == 4 {
            ivf_default_recall = recall;
        }
        row("ivf", "nprobe", nprobe, recall, us, ivf_build_ms);
    }

    // Proximity graph: one build (the graph does not depend on the beam),
    // beam-width sweep via `set_beam_width`.
    let t0 = Instant::now();
    let mut graph = ProximityGraph::build(&items, 12, 32);
    let graph_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut best_beam_recall = 0.0f64;
    for beam in [8usize, 16, 32, 64, 128, 256] {
        graph.set_beam_width(beam);
        let us = query_us(&graph, &queries, k, reps);
        let got = graph.search_batch(&queries, k).expect("proximity");
        let recall = recall_at_k(&got, &truth);
        best_beam_recall = best_beam_recall.max(recall);
        row("proximity", "beam", beam, recall, us, graph_build_ms);
    }

    println!(
        "\nproximity best recall@10: {best_beam_recall:.3} | IVF best (nprobe<=16): {ivf_best_recall:.3} | IVF default (nprobe=4): {ivf_default_recall:.3}"
    );
    let acceptance = best_beam_recall >= ivf_default_recall;
    println!(
        "acceptance (proximity >= IVF default recall@10 at some beam): {}",
        if acceptance { "PASS" } else { "FAIL" }
    );

    let json = serde_json::json!({
        "scale": scale.name(),
        "pool_items": items.len(),
        "queries": queries.rows(),
        "k": k,
        "rows": json_rows,
        "proximity_best_recall_at_10": best_beam_recall,
        "ivf_default_recall_at_10": ivf_default_recall,
        "ivf_best_recall_at_10": ivf_best_recall,
        "proximity_reaches_ivf_recall": acceptance,
    });
    write_json("backends", &json);
    if scale != BenchScale::Smoke {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_backends.json");
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", serde_json::to_string_pretty(&json).unwrap_or_default());
                println!("(baseline written to {})", path.display());
            }
            Err(e) => println!("(could not write {}: {e})", path.display()),
        }
    }
}
