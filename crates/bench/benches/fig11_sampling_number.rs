//! Fig 11 — effect of the sampling number K on AUC, for every method with a
//! self-developed sampler.
//!
//! Paper: Zoomer consistently tops the curve and its lead is largest at
//! small K ("finds a more informative sub-graph with a limited budget");
//! K = 25 beats K = 30 for all methods (information overload).

use zoomer_bench::{banner, million_dataset, train_preset, write_json, BenchScale};

const METHODS: [&str; 5] = ["zoomer", "graphsage", "pinsage", "pinnersage", "pixie"];
const KS: [usize; 6] = [5, 10, 15, 20, 25, 30];

fn main() {
    let scale = BenchScale::from_env();
    let seed = 1111;
    banner(
        "Fig 11 — AUC vs sampling number K per sampler-equipped method",
        "paper: ZOOMER consistently best; biggest lead at small K; K=25 ≥ K=30 (overload)",
        scale,
        seed,
    );
    let (data, split) = million_dataset(scale, seed);
    // A K-sweep across 5 methods is 30 training runs; scale the per-run
    // budget down accordingly.
    let steps = (scale.train_steps() / 3).max(500);

    print!("{:<12}", "K");
    for m in METHODS {
        print!("{m:>12}");
    }
    println!();
    let mut rows = Vec::new();
    for &k in &KS {
        print!("{k:<12}");
        let mut row = serde_json::Map::new();
        row.insert("k".into(), serde_json::json!(k));
        for preset in METHODS {
            let (_, report) =
                train_preset(&data, &split, preset, seed, steps, scale.eval_sample(), Some(k));
            print!("{:>12.4}", report.final_auc);
            row.insert(preset.to_string(), serde_json::json!(report.final_auc));
        }
        println!();
        rows.push(serde_json::Value::Object(row));
    }
    println!("\n(paper shape: zoomer column dominates, especially at K=5; curves non-monotone near K=30)");
    write_json("fig11_sampling_number", &serde_json::Value::Array(rows));
}
