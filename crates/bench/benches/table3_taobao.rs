//! Table III — AUC and HitRate@K on the Taobao-industry graph.
//!
//! Paper: on the million-scale graph, Zoomer beats all nine baselines on
//! every metric (AUC 72.4 vs 70.3 for the best baseline HAN; +0.1 average
//! HitRate@K over the strongest sampler baselines).

use zoomer_bench::{banner, million_dataset, train_preset, write_json, BenchScale};
use zoomer_core::train::eval::full_eval;

/// Paper Table III reference (AUC %, HR@100, HR@200, HR@300).
const PAPER: [(&str, f64, f64, f64, f64); 10] = [
    ("GCE-GNN", 68.3, 0.23, 0.31, 0.43),
    ("FGNN", 64.2, 0.22, 0.38, 0.52),
    ("STAMP", 69.6, 0.30, 0.45, 0.56),
    ("MCCF", 64.6, 0.22, 0.38, 0.52),
    ("HAN", 70.3, 0.25, 0.36, 0.49),
    ("PinSage", 68.0, 0.23, 0.33, 0.45),
    ("GraphSage", 68.2, 0.25, 0.36, 0.47),
    ("PinnerSage", 69.1, 0.28, 0.38, 0.50),
    ("Pixie", 69.5, 0.27, 0.40, 0.53),
    ("ZOOMER", 72.4, 0.35, 0.48, 0.58),
];

fn main() {
    let scale = BenchScale::from_env();
    let seed = 333;
    banner(
        "Table III — AUC & HitRate@K on the Taobao-industry graph",
        "paper: ZOOMER best on every metric; AUC 72.4 vs 70.3 (HAN)",
        scale,
        seed,
    );
    let (data, split) = million_dataset(scale, seed);
    println!(
        "dataset: {} nodes / {} edges, {} train + {} test examples\n",
        data.graph.num_nodes(),
        data.graph.num_edges(),
        split.train.len(),
        split.test.len()
    );
    let items = data.item_nodes();
    // HitRate is measured against the full item pool with K ∈ {100,200,300};
    // shrink K proportionally if the pool is smaller (smoke runs).
    let ks: Vec<usize> = [100usize, 200, 300].iter().map(|&k| k.min(items.len())).collect();

    println!(
        "{:<11} {:>7} {:>8} {:>8} {:>8}   {:>9} {:>7} {:>7} {:>7}",
        "model", "AUC", "HR@100", "HR@200", "HR@300", "p.AUC", "p.@100", "p.@200", "p.@300"
    );
    let mut rows = Vec::new();
    for &(name, p_auc, p1, p2, p3) in &PAPER {
        let preset = name.to_ascii_lowercase();
        let (mut model, _report) = train_preset(
            &data,
            &split,
            &preset,
            seed,
            scale.train_steps(),
            scale.eval_sample(),
            None,
        );
        // Evaluate on a capped test slice (hitrate uses its positives).
        let test_cap = (scale.eval_sample() + scale.hitrate_requests()).min(split.test.len());
        let test = &split.test[..test_cap];
        let eval = full_eval(&mut model, &data.graph, test, &items, &ks, seed);
        let hr = |i: usize| eval.hit_rates.get(i).map(|&(_, v)| v).unwrap_or(0.0);
        println!(
            "{:<11} {:>7.1} {:>8.3} {:>8.3} {:>8.3}   {:>9.1} {:>7.2} {:>7.2} {:>7.2}",
            name,
            eval.auc * 100.0,
            hr(0),
            hr(1),
            hr(2),
            p_auc,
            p1,
            p2,
            p3
        );
        rows.push(serde_json::json!({
            "model": name, "auc": eval.auc * 100.0,
            "hr": eval.hit_rates.iter().map(|&(k, v)| serde_json::json!({"k": k, "v": v})).collect::<Vec<_>>(),
            "paper": {"auc": p_auc, "hr100": p1, "hr200": p2, "hr300": p3},
        }));
    }
    println!(
        "\n(paper shape: ZOOMER leads AUC and HitRate; sampler-equipped baselines cluster below)"
    );
    write_json("table3_taobao", &serde_json::Value::Array(rows));
}
