//! Fig 12 — efficiency versus effectiveness.
//!
//! Paper protocol: all sampler-equipped baselines run with sampling number
//! 30; Zoomer additionally shrinks its processed graph to one-tenth via the
//! focal-biased sampler (K = 3) and still wins on AUC, with ≈10× average
//! speedup ("up to 14×" in the abstract).

use zoomer_bench::{banner, million_dataset, train_preset, write_json, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    let seed = 1212;
    banner(
        "Fig 12 — efficiency vs effectiveness (Zoomer at 1/10 ROI)",
        "paper: ~10× mean speedup (up to 14×) with equal-or-better AUC",
        scale,
        seed,
    );
    let (data, split) = million_dataset(scale, seed);
    let steps = scale.train_steps();

    // Baselines at K=30; Zoomer at K=3 (one-tenth of the processed graph).
    let runs: Vec<(&str, usize)> =
        vec![("graphsage", 30), ("pinsage", 30), ("pinnersage", 30), ("pixie", 30), ("zoomer", 3)];
    println!(
        "\n{:<12} {:>4} {:>12} {:>14} {:>10} {:>10}",
        "model", "K", "steps/s", "time for run", "AUC", "speedup"
    );
    let mut baseline_rate = Vec::new();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (preset, k) in runs {
        let (_, report) =
            train_preset(&data, &split, preset, seed, steps, scale.eval_sample(), Some(k));
        results.push((preset, k, report));
    }
    let zoomer_rate = results.last().expect("zoomer run").2.steps_per_sec();
    for (preset, k, report) in &results {
        let rate = report.steps_per_sec();
        let speedup = zoomer_rate / rate;
        if *preset != "zoomer" {
            baseline_rate.push(rate);
        }
        println!(
            "{:<12} {:>4} {:>12.1} {:>13.1}s {:>10.4} {:>9.2}x",
            preset,
            k,
            rate,
            report.elapsed.as_secs_f64(),
            report.final_auc,
            speedup
        );
        rows.push(serde_json::json!({
            "model": preset, "k": k, "steps_per_sec": rate,
            "seconds": report.elapsed.as_secs_f64(), "auc": report.final_auc,
            "zoomer_speedup_vs_this": speedup,
        }));
    }
    let mean_baseline = baseline_rate.iter().sum::<f64>() / baseline_rate.len().max(1) as f64;
    println!(
        "\nZoomer (K=3) throughput vs mean baseline (K=30): {:.1}×",
        zoomer_rate / mean_baseline
    );
    println!(
        "(paper shape: zoomer trains several times faster at 1/10 ROI with AUC parity or better)"
    );
    write_json("fig12_efficiency", &serde_json::Value::Array(rows));
}
