//! Kernel benchmark baseline — naive vs blocked vs parallel GEMM, scalar vs
//! unrolled dot, IVF batch search, and end-to-end `handle_batch` throughput.
//!
//! This is the tracked perf baseline for the compute kernels: it writes
//! `target/experiments/kernels.json` always, and — at `small`/`full` scale —
//! `BENCH_kernels.json` at the repo root, the file future PRs regress
//! against. `ZOOMER_BENCH_SCALE=smoke` is the CI mode: tiny shapes, short
//! measurement windows, no repo-root write (so CI can never clobber the
//! recorded baseline with noise), but every kernel still executes.
//!
//! GEMM shapes are the ones `FrozenModel::embed_requests` actually runs per
//! batch of `B` requests at embedding width `d`: the combine layer
//! (`2B×2d · 2d×d`), the UQ tower (`B×2d · 2d×d`), and the item tower
//! (`N×d · d×d`, index build).

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use zoomer_bench::{banner, write_json, BenchScale};
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::serving::{FrozenModel, IvfIndex, OnlineServer, Query, ServingConfig};
use zoomer_core::tensor::{dot, dot4, kernel, seeded_rng, similarity::dot_reference, Matrix};
use zoomer_data::{TaobaoConfig, TaobaoData};

use rand::Rng;

/// Median-of-reps wall time per call, in nanoseconds. Each rep runs `f`
/// enough times to fill a ~2 ms (smoke) / ~20 ms window so timer overhead
/// vanishes; the median over reps shrugs off scheduler noise.
fn time_ns(smoke: bool, mut f: impl FnMut()) -> f64 {
    let (window_ns, reps) = if smoke { (2_000_000.0, 3) } else { (20_000_000.0, 7) };
    // Calibrate the per-call cost.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1) as f64;
    let iters = ((window_ns / once) as usize).clamp(1, 1_000_000);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

fn main() {
    let scale = BenchScale::from_env();
    let smoke = scale == BenchScale::Smoke;
    let seed = 1717;
    banner(
        "Kernel baseline — blocked GEMM, unrolled dot, batch search, handle_batch",
        "ISSUE 3 acceptance: >=2x on B>=64 embed_requests GEMM shapes",
        scale,
        seed,
    );
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("hardware threads: {threads}");

    // ---- GEMM: naive (reference, with sparsity skip) vs blocked vs auto ----
    let batches: &[usize] = if smoke { &[16, 64] } else { &[1, 16, 64, 256, 1024] };
    let dims: &[usize] = if smoke { &[16] } else { &[16, 64] };
    let mut gemm_rows = Vec::new();
    println!("\n-- GEMM (combine-layer shape 2B x 2d x d) --");
    println!(
        "{:>6} {:>4} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "B", "d", "naive ns", "blocked ns", "auto ns", "blk spd", "auto spd"
    );
    for &d in dims {
        for &b in batches {
            let (m, k, n) = (2 * b, 2 * d, d);
            let a = random_matrix(m, k, seed ^ (b as u64) << 8 ^ d as u64);
            let w = random_matrix(k, n, seed.wrapping_add(7));
            let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.01).collect();
            let naive = time_ns(smoke, || {
                std::hint::black_box(a.matmul_bias_reference(&w, &bias));
            });
            let mut out = vec![0.0f32; m * n];
            let blocked = time_ns(smoke, || {
                kernel::gemm_serial(
                    a.as_slice(),
                    w.as_slice(),
                    Some(&bias),
                    m,
                    k,
                    n,
                    std::hint::black_box(&mut out),
                );
            });
            let auto = time_ns(smoke, || {
                std::hint::black_box(a.matmul_bias(&w, &bias));
            });
            let (blk_spd, auto_spd) = (naive / blocked, naive / auto);
            println!(
                "{b:>6} {d:>4} {naive:>14.0} {blocked:>14.0} {auto:>14.0} {blk_spd:>8.2}x {auto_spd:>8.2}x"
            );
            gemm_rows.push(serde_json::json!({
                "shape": format!("{m}x{k}x{n}"), "batch": b, "dim": d,
                "naive_ns": naive, "blocked_ns": blocked, "auto_ns": auto,
                "speedup_blocked": blk_spd, "speedup_auto": auto_spd,
            }));
        }
    }

    // ---- Sparsity-skip cost on dense inputs (the satellite-6 audit) ----
    // A dense matmul through the skip-checking reference vs the blocked
    // kernel: the number that justifies dropping the per-element branch.
    {
        let (m, k, n) = (128, 32, 16);
        let a = random_matrix(m, k, seed + 21);
        let w = random_matrix(k, n, seed + 22);
        let skip = time_ns(smoke, || {
            std::hint::black_box(a.matmul_reference(&w));
        });
        let dense = time_ns(smoke, || {
            std::hint::black_box(a.matmul(&w));
        });
        println!(
            "\nsparsity-skip audit (dense 128x32x16): reference {skip:.0} ns vs blocked {dense:.0} ns ({:.2}x)",
            skip / dense
        );
        gemm_rows.push(serde_json::json!({
            "shape": "128x32x16 dense skip audit",
            "naive_ns": skip, "blocked_ns": dense, "speedup_blocked": skip / dense,
        }));
    }

    // ---- dot: scalar reference vs unrolled lanes vs dot4 ----
    let mut dot_rows = Vec::new();
    println!("\n-- dot --");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>9}",
        "d", "scalar ns", "lanes ns", "dot4 ns/qry", "spd"
    );
    for &d in &[16usize, 64, 256] {
        let mut rng = seeded_rng(seed + d as u64);
        let v: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let qs: Vec<Vec<f32>> =
            (0..4).map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let scalar = time_ns(smoke, || {
            std::hint::black_box(dot_reference(&v, &qs[0]));
        });
        let lanes = time_ns(smoke, || {
            std::hint::black_box(dot(&v, &qs[0]));
        });
        let four = time_ns(smoke, || {
            std::hint::black_box(dot4(&v, &qs[0], &qs[1], &qs[2], &qs[3]));
        }) / 4.0;
        println!("{d:>6} {scalar:>12.1} {lanes:>12.1} {four:>14.1} {:>8.2}x", scalar / lanes);
        dot_rows.push(serde_json::json!({
            "dim": d, "scalar_ns": scalar, "unrolled_ns": lanes,
            "dot4_ns_per_query": four, "speedup": scalar / lanes,
        }));
    }

    // ---- int8 quantized dot: reference vs blocked vs dot4, plus bytes ----
    // The quantized-retrieval hot loop is `dot_i8` over per-vector codes; the
    // numbers that matter are the speedup over the f32 dot at equal dim and
    // the bytes each scored candidate touches (codes + params vs f32 row).
    let mut qdot_rows = Vec::new();
    println!("\n-- quantized dot (i8 codes, f32 combine) --");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>14} {:>9} {:>11} {:>11}",
        "d", "f32 ns", "i8 ref ns", "i8 ns", "dot4_i8 n/q", "spd f32", "B/cand i8", "B/cand f32"
    );
    for &d in &[16usize, 64, 256] {
        let mut rng = seeded_rng(seed + 31 + d as u64);
        let v: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let qs: Vec<Vec<f32>> =
            (0..4).map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let (vc, _vp) = zoomer_core::tensor::quantize(&v);
        let quantized: Vec<(Vec<i8>, zoomer_core::tensor::QuantParams)> =
            qs.iter().map(|q| zoomer_core::tensor::quantize(q)).collect();
        let (qc, _): &(Vec<i8>, _) = &quantized[0];
        let f32_ns = time_ns(smoke, || {
            std::hint::black_box(dot(&v, &qs[0]));
        });
        let ref_ns = time_ns(smoke, || {
            std::hint::black_box(kernel::dot_i8_reference(&vc, qc));
        });
        let i8_ns = time_ns(smoke, || {
            std::hint::black_box(kernel::dot_i8(&vc, qc));
        });
        let four_ns = time_ns(smoke, || {
            std::hint::black_box(kernel::dot4_i8(
                &vc,
                &quantized[0].0,
                &quantized[1].0,
                &quantized[2].0,
                &quantized[3].0,
            ));
        }) / 4.0;
        // Bytes a single candidate costs the scan: i8 codes + (scale,
        // zero_point, code_sum) vs the full f32 row.
        let bytes_i8 = d + 12;
        let bytes_f32 = d * 4;
        println!(
            "{d:>6} {f32_ns:>12.1} {ref_ns:>12.1} {i8_ns:>12.1} {four_ns:>14.1} {:>8.2}x {bytes_i8:>11} {bytes_f32:>11}",
            f32_ns / i8_ns
        );
        qdot_rows.push(serde_json::json!({
            "dim": d, "f32_ns": f32_ns, "i8_reference_ns": ref_ns, "i8_ns": i8_ns,
            "dot4_i8_ns_per_query": four_ns, "speedup_vs_f32": f32_ns / i8_ns,
            "bytes_per_candidate_i8": bytes_i8, "bytes_per_candidate_f32": bytes_f32,
        }));
    }

    // ---- IVF search_batch throughput ----
    let mut rng = seeded_rng(seed + 5);
    let n_items = if smoke { 2_000 } else { 20_000 };
    let dim = 32;
    let items: Vec<(u64, Vec<f32>)> = (0..n_items as u64)
        .map(|id| (id, (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()))
        .collect();
    let index = IvfIndex::build(&items, 64.min(n_items / 8), 4, seed);
    let n_queries = if smoke { 64 } else { 256 };
    let queries = random_matrix(n_queries, dim, seed + 6);
    let batch_ns = time_ns(smoke, || {
        std::hint::black_box(index.search_batch(&queries, 10, 8).expect("search"));
    });
    let qps = n_queries as f64 / (batch_ns * 1e-9);
    println!("\nIVF search_batch: {n_queries} queries over {n_items} items -> {qps:.0} queries/s");

    // ---- End-to-end handle_batch closed-loop throughput ----
    let data = TaobaoData::generate(if smoke {
        TaobaoConfig::tiny(seed)
    } else {
        TaobaoConfig::default_with_seed(seed)
    });
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, dd));
    let graph = Arc::new(
        zoomer_core::graph::read_snapshot(zoomer_core::graph::write_snapshot(&data.graph))
            .expect("snapshot roundtrip"),
    );
    let items_nodes = data.item_nodes();
    let server = OnlineServer::builder()
        .graph(Arc::clone(&graph))
        .frozen(FrozenModel::from_model(&mut model, &graph))
        .item_pool(&items_nodes)
        .config(ServingConfig::default())
        .seed(seed)
        .build()
        .expect("server build");
    let pool: Vec<Query> = data.logs.iter().map(|l| Query::new(l.user, l.query)).collect();
    let warm: Vec<u32> = pool.iter().flat_map(|q| [q.user, q.query]).collect();
    server.warm_cache(&warm).expect("warm cache");
    let mut e2e_rows = Vec::new();
    println!("\n-- handle_batch (single worker, closed loop) --");
    for &bs in &[16usize, 64] {
        let reqs: Vec<Query> = pool.iter().cycle().take(bs).copied().collect();
        let ns = time_ns(smoke, || {
            std::hint::black_box(server.handle_batch(&reqs).expect("handle"));
        });
        let rps = bs as f64 / (ns * 1e-9);
        println!("batch {bs:>4}: {rps:>10.0} req/s ({:.1} us/batch)", ns / 1e3);
        e2e_rows
            .push(serde_json::json!({"batch": bs, "requests_per_sec": rps, "ns_per_batch": ns}));
    }

    let json = serde_json::json!({
        "scale": scale.name(),
        "hardware_threads": threads,
        "gemm": gemm_rows,
        "dot": dot_rows,
        "quantized_dot": qdot_rows,
        "ivf_search_batch": {"queries": n_queries, "items": n_items, "queries_per_sec": qps},
        "handle_batch": e2e_rows,
    });
    write_json("kernels", &json);
    if !smoke {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", serde_json::to_string_pretty(&json).unwrap_or_default());
                println!("(baseline written to {})", path.display());
            }
            Err(e) => println!("(could not write {}: {e})", path.display()),
        }
    }
}
