//! Fig 10 — training time w.r.t. graph scale.
//!
//! Paper protocol: "we set achieving AUC equals 0.6 as a goal, and record the
//! time cost on different graphs separately. We specify the graph sampling
//! number to be 5 … and perform a 2-layer ZOOMER". Zoomer reaches the target
//! in less time than GCE-GNN on all three graph tiers, and cost grows with
//! scale.
//!
//! We run the same protocol on the three laptop-sized scale tiers, training
//! Zoomer and GCE-GNN to a fixed AUC target with the distributed
//! (worker/parameter-server) trainer for the larger tiers' flavor text, and
//! the single-thread trainer for the timing rows (deterministic).

use zoomer_bench::{banner, write_json, BenchScale};
use zoomer_core::data::{split_examples, ScaleTier, TaobaoData};
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::train::{train, TrainerConfig};

fn main() {
    let scale = BenchScale::from_env();
    let seed = 1010;
    banner(
        "Fig 10 — training time to target AUC vs graph scale",
        "paper: time grows with graph scale; ZOOMER reaches the goal faster than GCE-GNN on every tier",
        scale,
        seed,
    );
    let auc_target = 0.60;
    let (divisor, step_cap, eval_every) = match scale {
        BenchScale::Smoke => (20, 2_000, 200),
        BenchScale::Small => (4, 60_000, 400),
        BenchScale::Full => (1, 200_000, 1_000),
    };

    println!(
        "\n{:>18} {:>10} {:>10} {:>14} {:>12} {:>10}",
        "graph", "model", "steps", "time-to-0.60 s", "reached", "AUC"
    );
    let mut rows = Vec::new();
    for tier in ScaleTier::ALL {
        let mut cfg = tier.config(seed);
        cfg.num_sessions /= divisor;
        let data = TaobaoData::generate(cfg);
        let split = split_examples(data.ctr_examples(), 0.9, seed);
        let dd = data.graph.features().dense_dim();
        for preset in ["zoomer", "gce-gnn"] {
            let mut config = ModelConfig::preset(preset, seed, dd).expect("preset");
            config.fanout = 5; // paper: sampling number 5
            let mut model = UnifiedCtrModel::new(config);
            let report = train(
                &mut model,
                &data.graph,
                &split,
                &TrainerConfig {
                    epochs: 50,
                    max_steps_per_epoch: Some(step_cap / 10),
                    eval_every: Some(eval_every),
                    auc_target: Some(auc_target),
                    eval_sample: (scale.eval_sample() / 2).min(split.test.len()),
                    seed,
                    ..Default::default()
                },
            );
            println!(
                "{:>18} {:>10} {:>10} {:>14.1} {:>12} {:>10.4}",
                tier.name(),
                preset,
                report.steps,
                report.elapsed.as_secs_f64(),
                if report.reached_target { "yes" } else { "capped" },
                report.final_auc
            );
            rows.push(serde_json::json!({
                "tier": tier.name(), "model": preset,
                "nodes": data.graph.num_nodes(), "edges": data.graph.num_edges(),
                "steps": report.steps, "seconds": report.elapsed.as_secs_f64(),
                "reached_target": report.reached_target, "auc": report.final_auc,
            }));
        }
    }
    println!("\n(paper shape: seconds grow with tier size; zoomer row ≤ gce-gnn row per tier)");
    write_json("fig10_scalability", &serde_json::Value::Array(rows));
}
