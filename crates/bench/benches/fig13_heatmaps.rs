//! Fig 13 — heatmaps of coupling coefficients (model interpretability).
//!
//! (a) A user node: each row fixes a different query as the focal pair
//!     {qᵢ, u_A}; columns are 10 items from the user's history; cells are
//!     edge-level attention weights. Rows must differ — the model adapts
//!     edge relations to the current intention.
//! (b) A query node ("handbag"): rows are 8 different users as focal pairs;
//!     columns are 9 item neighbors of the query. Weights shift per user —
//!     multiple representations for the same ego node.

use zoomer_bench::{banner, million_dataset, write_json, BenchScale};
use zoomer_core::model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_core::tensor::seeded_rng;

fn ascii_cell(w: f32, row_max: f32) -> char {
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    let frac = if row_max <= 0.0 { 0.0 } else { (w / row_max).clamp(0.0, 1.0) };
    ramp[(frac * (ramp.len() - 1) as f32).round() as usize]
}

fn print_heatmap(title: &str, rows: &[(String, Vec<f32>)]) {
    println!("\n{title}");
    for (label, weights) in rows {
        let row_max = weights.iter().copied().fold(0.0f32, f32::max);
        let cells: String =
            weights.iter().map(|&w| ascii_cell(w, row_max)).flat_map(|c| [c, ' ']).collect();
        let nums: Vec<String> = weights.iter().map(|w| format!("{w:.2}")).collect();
        println!("{label:>12} | {cells}| {}", nums.join(" "));
    }
}

fn row_divergence(rows: &[(String, Vec<f32>)]) -> f64 {
    // Mean pairwise L1 distance between rows (0 = identical rows).
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..rows.len() {
        for j in i + 1..rows.len() {
            total +=
                rows[i].1.iter().zip(&rows[j].1).map(|(a, b)| (a - b).abs() as f64).sum::<f64>();
            pairs += 1;
        }
    }
    total / pairs.max(1) as f64
}

fn main() {
    let scale = BenchScale::from_env();
    let seed = 1313;
    banner(
        "Fig 13 — heatmaps of coupling coefficients",
        "paper: edge weights change as the focal pair changes → multiple embeddings per ego node",
        scale,
        seed,
    );
    let (data, split) = million_dataset(scale, seed);
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, dd));
    // Brief training so the attention parameters are not at init.
    let steps = scale.train_steps() / 3;
    let mut rng = seeded_rng(seed);
    for ex in split.train.iter().take(steps) {
        let _ = model.train_step(&data.graph, ex, &mut rng);
    }

    // (a) user A under 10 different queries × 10 history items.
    let user_a = data.logs[0].user;
    let mut clicked: Vec<u32> = data
        .logs
        .iter()
        .filter(|l| l.user == user_a)
        .flat_map(|l| l.clicked.iter().copied())
        .collect();
    clicked.sort_unstable();
    clicked.dedup();
    let items_a: Vec<u32> = clicked.into_iter().take(10).collect();
    let queries: Vec<u32> = data
        .logs
        .iter()
        .map(|l| l.query)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .take(10)
        .collect();
    let rows_a: Vec<(String, Vec<f32>)> = queries
        .iter()
        .map(|&q| {
            (
                format!("q{q}"),
                model.coupling_coefficients(&data.graph, user_a, &items_a, &[q, user_a]),
            )
        })
        .collect();
    print_heatmap(
        &format!("Fig 13(a): user {user_a}, rows = focal query, cols = 10 history items"),
        &rows_a,
    );
    let div_a = row_divergence(&rows_a);
    println!(
        "mean pairwise row L1 divergence: {div_a:.4} (paper shape: > 0 — weights shift with focal)"
    );

    // (b) one query under 8 different users × 9 item neighbors.
    let query_b = data.logs[1].query;
    let (nbrs, _) = data.graph.neighbors(query_b, zoomer_core::graph::EdgeType::Click);
    let items_b: Vec<u32> = nbrs
        .iter()
        .copied()
        .filter(|&n| data.graph.node_type(n) == zoomer_core::graph::NodeType::Item)
        .take(9)
        .collect();
    let users: Vec<u32> = (0..8).collect();
    let rows_b: Vec<(String, Vec<f32>)> = users
        .iter()
        .map(|&u| {
            (
                format!("user{u}"),
                model.coupling_coefficients(&data.graph, query_b, &items_b, &[u, query_b]),
            )
        })
        .collect();
    print_heatmap(
        &format!(
            "Fig 13(b): query {query_b}, rows = focal user, cols = {} item neighbors",
            items_b.len()
        ),
        &rows_b,
    );
    let div_b = row_divergence(&rows_b);
    println!("mean pairwise row L1 divergence: {div_b:.4} (paper shape: > 0 — per-user representations differ)");

    write_json(
        "fig13_heatmaps",
        &serde_json::json!({
            "fig13a": rows_a.iter().map(|(l, w)| serde_json::json!({"focal": l, "weights": w})).collect::<Vec<_>>(),
            "fig13a_divergence": div_a,
            "fig13b": rows_b.iter().map(|(l, w)| serde_json::json!({"focal": l, "weights": w})).collect::<Vec<_>>(),
            "fig13b_divergence": div_b,
        }),
    );
}
