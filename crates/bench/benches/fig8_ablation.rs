//! Fig 8 — ablation study of the multi-level attention, across the three
//! Taobao graph scales.
//!
//! Paper variants: GCN (mean pooling everywhere), ZOOMER-FE (no semantic
//! combination), ZOOMER-FS (no edge reweighing), ZOOMER-ES (no feature
//! projection), full ZOOMER. Findings: every attention level helps; removing
//! the semantic level hurts most; ZOOMER-ES is the strongest single
//! ablation; larger graphs score lower under a fixed training budget.

use zoomer_bench::{banner, write_json, BenchScale};
use zoomer_core::data::{split_examples, ScaleTier, TaobaoData};
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::train::{train, TrainerConfig};

const VARIANTS: [&str; 5] = ["gcn", "zoomer-fe", "zoomer-fs", "zoomer-es", "zoomer"];

fn main() {
    let scale = BenchScale::from_env();
    let seed = 888;
    banner(
        "Fig 8 — multi-level attention ablation × 3 graph scales",
        "paper: every level adds AUC; dropping semantic hurts most; bigger graphs score lower at fixed budget",
        scale,
        seed,
    );
    let divisor = match scale {
        BenchScale::Smoke => 20,
        BenchScale::Small => 4,
        BenchScale::Full => 1,
    };

    println!(
        "\n{:<12} {:>14} {:>18} {:>14}",
        "variant", "million AUC", "hundred-mil AUC", "billion AUC"
    );
    let mut table: Vec<Vec<f64>> = vec![Vec::new(); VARIANTS.len()];
    for tier in ScaleTier::ALL {
        let mut cfg = tier.config(seed);
        cfg.num_sessions /= divisor;
        let data = TaobaoData::generate(cfg);
        let split = split_examples(data.ctr_examples(), 0.9, seed);
        let dd = data.graph.features().dense_dim();
        for (vi, preset) in VARIANTS.iter().enumerate() {
            let config = ModelConfig::preset(preset, seed, dd).expect("preset");
            let mut model = UnifiedCtrModel::new(config);
            // Fixed training budget across tiers — the paper's point is that
            // the budget buys less on bigger graphs.
            let report = train(
                &mut model,
                &data.graph,
                &split,
                &TrainerConfig {
                    epochs: 1,
                    max_steps_per_epoch: Some(scale.train_steps()),
                    eval_sample: scale.eval_sample().min(split.test.len()),
                    seed,
                    ..Default::default()
                },
            );
            table[vi].push(report.final_auc);
        }
    }
    let mut rows = Vec::new();
    for (vi, preset) in VARIANTS.iter().enumerate() {
        println!(
            "{:<12} {:>14.4} {:>18.4} {:>14.4}",
            preset, table[vi][0], table[vi][1], table[vi][2]
        );
        rows.push(serde_json::json!({
            "variant": preset,
            "million": table[vi][0], "hundred_million": table[vi][1], "billion": table[vi][2],
        }));
    }
    println!("\n(paper shape: zoomer row highest per column; gcn lowest; columns fall left→right)");
    write_json("fig8_ablation", &serde_json::Value::Array(rows));
}
