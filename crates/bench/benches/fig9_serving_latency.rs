//! Fig 9 — online response time (ms) versus requests per second.
//!
//! Paper: "ZOOMER handles each request less than 3 ms in average … when QPS
//! increases up to 10x, the rt increases less than 2x." We reproduce the
//! measurement with the frozen serving stack (neighbor caches at k = 30,
//! edge-level attention only, IVF inverted index) under an open-loop load
//! generator, and additionally report the no-cache ablation.

use std::sync::Arc;

use zoomer_bench::{banner, million_dataset, write_json, BenchScale};
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::serving::{run_load_test, FrozenModel, OnlineServer, ServingConfig};

fn main() {
    let scale = BenchScale::from_env();
    let seed = 909;
    banner(
        "Fig 9 — online response time vs QPS",
        "paper: <3 ms mean; 10× QPS → <2× rt growth",
        scale,
        seed,
    );
    let (data, _) = million_dataset(scale, seed);
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, dd));
    let graph = Arc::new(
        zoomer_core::graph::read_snapshot(zoomer_core::graph::write_snapshot(&data.graph))
            .expect("snapshot roundtrip"),
    );
    let items = data.item_nodes();

    // Per-QPS request counts target a ~2-4 s measurement window each, so
    // low-QPS rows don't dominate wall time.
    let window_secs = match scale {
        BenchScale::Smoke => 0.5,
        BenchScale::Small => 2.0,
        BenchScale::Full => 4.0,
    };
    let request_pool: Vec<(u32, u32)> = data
        .logs
        .iter()
        .map(|l| (l.user, l.query))
        .collect();

    let mut json_rows = Vec::new();
    for disable_cache in [false, true] {
        let label = if disable_cache { "no cache (ablation)" } else { "cache k=30 (paper)" };
        let server = OnlineServer::build(
            Arc::clone(&graph),
            FrozenModel::from_model(&mut model, &graph),
            &items,
            ServingConfig { cache_k: 30, top_k: 100, disable_cache, ..Default::default() },
            seed,
        );
        // Warm as the deployed system's asynchronous refresher would.
        let warm: Vec<u32> = request_pool.iter().flat_map(|&(u, q)| [u, q]).collect();
        server.warm_cache(&warm);
        println!("\n-- {label} --");
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "QPS", "mean ms", "p50 ms", "p95 ms", "p99 ms", "achieved"
        );
        let mut base_mean = None;
        for qps in [100.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0] {
            let n = ((qps * window_secs) as usize).clamp(50, 40_000);
            let requests: Vec<(u32, u32)> = request_pool
                .iter()
                .cycle()
                .take(n)
                .copied()
                .collect();
            let stats = run_load_test(&server, &requests, qps, 4);
            println!(
                "{:>8.0} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12.0}",
                qps,
                stats.mean_ms,
                stats.p50_ms,
                stats.p95_ms,
                stats.p99_ms,
                stats.achieved_qps()
            );
            if base_mean.is_none() {
                base_mean = Some(stats.mean_ms.max(1e-6));
            }
            json_rows.push(serde_json::json!({
                "config": label, "qps": qps, "mean_ms": stats.mean_ms,
                "p50_ms": stats.p50_ms, "p95_ms": stats.p95_ms, "p99_ms": stats.p99_ms,
                "rt_vs_lowest_qps": stats.mean_ms / base_mean.unwrap(),
            }));
        }
        println!("cache entries: {}, hit rate: {:.1}%", server.cache().len(), server.cache().hit_rate() * 100.0);
    }
    println!("\n(paper shape: low single-digit-ms means; sublinear rt growth with QPS; cache keeps rt flat)");
    write_json("fig9_serving_latency", &serde_json::Value::Array(json_rows));
}
