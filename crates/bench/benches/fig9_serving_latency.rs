//! Fig 9 — online response time (ms) versus requests per second.
//!
//! Paper: "ZOOMER handles each request less than 3 ms in average … when QPS
//! increases up to 10x, the rt increases less than 2x." We reproduce the
//! measurement with the frozen serving stack (neighbor caches at k = 30,
//! edge-level attention only, IVF inverted index) under an open-loop load
//! generator, and additionally report the no-cache ablation.

use std::sync::Arc;

use zoomer_bench::{banner, million_dataset, write_json, BenchScale};
use zoomer_core::model::{ModelConfig, UnifiedCtrModel};
use zoomer_core::obs::MetricsRegistry;
use zoomer_core::serving::{
    run_load, BackendKind, FrozenModel, LoadTestSpec, OnlineServer, Query, ServingConfig,
};

fn main() {
    let scale = BenchScale::from_env();
    let seed = 909;
    banner(
        "Fig 9 — online response time vs QPS",
        "paper: <3 ms mean; 10× QPS → <2× rt growth",
        scale,
        seed,
    );
    let (data, _) = million_dataset(scale, seed);
    let dd = data.graph.features().dense_dim();
    let mut model = UnifiedCtrModel::new(ModelConfig::zoomer(seed, dd));
    let graph = Arc::new(
        zoomer_core::graph::read_snapshot(zoomer_core::graph::write_snapshot(&data.graph))
            .expect("snapshot roundtrip"),
    );
    let items = data.item_nodes();

    // Per-QPS request counts target a ~2-4 s measurement window each, so
    // low-QPS rows don't dominate wall time.
    let window_secs = match scale {
        BenchScale::Smoke => 0.5,
        BenchScale::Small => 2.0,
        BenchScale::Full => 4.0,
    };
    let request_pool: Vec<Query> = data.logs.iter().map(|l| Query::new(l.user, l.query)).collect();

    let mut json_rows = Vec::new();
    // Peak requests/sec the per-request (single-call) series achieves on the
    // default cached config — the baseline the batched series is judged
    // against below.
    let mut per_request_peak = 0.0f64;
    for disable_cache in [false, true] {
        let label = if disable_cache { "no cache (ablation)" } else { "cache k=30 (paper)" };
        let server = OnlineServer::builder()
            .graph(Arc::clone(&graph))
            .frozen(FrozenModel::from_model(&mut model, &graph))
            .item_pool(&items)
            .config(ServingConfig { cache_k: 30, top_k: 100, disable_cache, ..Default::default() })
            .seed(seed)
            .build()
            .expect("server build");
        // Warm as the deployed system's asynchronous refresher would.
        let warm: Vec<u32> = request_pool.iter().flat_map(|q| [q.user, q.query]).collect();
        server.warm_cache(&warm).expect("warm cache");
        println!("\n-- {label} --");
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "QPS", "mean ms", "p50 ms", "p95 ms", "p99 ms", "achieved"
        );
        let mut base_mean = None;
        let mut peak_achieved = 0.0f64;
        for qps in [100.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0] {
            let n = ((qps * window_secs) as usize).clamp(50, 40_000);
            let requests: Vec<Query> = request_pool.iter().cycle().take(n).copied().collect();
            let report = run_load(&server, &requests, &LoadTestSpec::open(qps).num_threads(4))
                .expect("load run");
            let lat = &report.latency;
            println!(
                "{:>8.0} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12.0}",
                qps,
                lat.mean_ms,
                lat.p50_ms,
                lat.p95_ms,
                lat.p99_ms,
                report.achieved_qps()
            );
            if base_mean.is_none() {
                base_mean = Some(lat.mean_ms.max(1e-6));
            }
            peak_achieved = peak_achieved.max(report.achieved_qps());
            json_rows.push(serde_json::json!({
                "config": label, "qps": qps, "mean_ms": lat.mean_ms,
                "p50_ms": lat.p50_ms, "p95_ms": lat.p95_ms, "p99_ms": lat.p99_ms,
                "rt_vs_lowest_qps": lat.mean_ms / base_mean.unwrap(),
            }));
        }
        println!(
            "cache entries: {}, hit rate: {:.1}%",
            server.cache().len(),
            server.cache().stats().hit_rate() * 100.0
        );
        if !disable_cache {
            per_request_peak = peak_achieved;
        }
    }
    // Batched series: closed-loop peak throughput by batch size on the
    // default (cached) config. batch=1 is the per-request baseline running
    // the same handle_batch code path. This series carries an enabled
    // metrics registry so the per-stage breakdown (cache resolve / embed /
    // ANN probe / rank) prints alongside the throughput table.
    let registry = Arc::new(MetricsRegistry::enabled());
    let server = OnlineServer::builder()
        .graph(Arc::clone(&graph))
        .frozen(FrozenModel::from_model(&mut model, &graph))
        .item_pool(&items)
        .config(ServingConfig::default())
        .seed(seed)
        .metrics(Arc::clone(&registry))
        .build()
        .expect("server build");
    let warm: Vec<u32> = request_pool.iter().flat_map(|q| [q.user, q.query]).collect();
    server.warm_cache(&warm).expect("warm cache");
    let n = ((2000.0 * window_secs) as usize).clamp(200, 40_000);
    let requests: Vec<Query> = request_pool.iter().cycle().take(n).copied().collect();
    println!("\n-- batched execution (closed loop, 4 threads) --");
    println!("{:>8} {:>12} {:>12} {:>10}", "batch", "req/s", "mean ms", "speedup");
    let mut base_rps = None;
    let mut batch16_rps = 0.0f64;
    let mut stage_rows = Vec::new();
    for batch in [1usize, 4, 16, 64] {
        let spec = LoadTestSpec::closed().num_threads(4).batch_size(batch);
        let report = run_load(&server, &requests, &spec).expect("load run");
        let rps = report.achieved_qps();
        if base_rps.is_none() {
            base_rps = Some(rps.max(1e-9));
        }
        if batch >= 16 {
            batch16_rps = batch16_rps.max(rps);
        }
        let speedup = rps / base_rps.unwrap();
        println!("{:>8} {:>12.0} {:>12.3} {:>9.2}x", batch, rps, report.latency.mean_ms, speedup);
        json_rows.push(serde_json::json!({
            "config": "batched closed-loop", "batch_size": batch,
            "requests_per_sec": rps, "mean_ms": report.latency.mean_ms,
            "speedup_vs_batch1": speedup,
        }));
        if batch == 16 {
            stage_rows = report.stages.clone();
        }
    }
    if !stage_rows.is_empty() {
        println!("\nper-stage latency at batch 16 (ms per handle_batch call):");
        for stage in &stage_rows {
            println!(
                "  {:<14} p50 {:.4}  p95 {:.4}  p99 {:.4}  ({} samples)",
                stage.stage, stage.p50_ms, stage.p95_ms, stage.p99_ms, stage.count
            );
            json_rows.push(serde_json::json!({
                "config": "stage breakdown (batch 16)", "stage": stage.stage.clone(),
                "p50_ms": stage.p50_ms, "p95_ms": stage.p95_ms, "p99_ms": stage.p99_ms,
                "samples": stage.count,
            }));
        }
    }
    let vs_per_request = batch16_rps / per_request_peak.max(1e-9);
    println!(
        "\nbatch>=16 closed-loop throughput: {:.0} req/s = {:.1}x the per-request series peak ({:.0} req/s)",
        batch16_rps, vs_per_request, per_request_peak
    );
    json_rows.push(serde_json::json!({
        "config": "batched vs per-request series",
        "batch16_requests_per_sec": batch16_rps,
        "per_request_series_peak": per_request_peak,
        "speedup_vs_per_request_series": vs_per_request,
    }));
    // Per-backend axis: the same cached workload served through each
    // retrieval backend (IVF at its default nprobe, the exact flat scan,
    // and the relevance proximity graph at its default beam). One open-loop
    // latency row plus closed-loop batch=16 throughput per backend; deeper
    // recall/latency/build-cost tradeoffs live in the `backends` bench.
    println!("\n-- retrieval backends (open loop 2000 QPS + closed loop batch=16) --");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12}",
        "backend", "mean ms", "p95 ms", "p99 ms", "batch16 r/s"
    );
    let backend_qps = 2000.0;
    let n = ((backend_qps * window_secs) as usize).clamp(200, 40_000);
    let requests: Vec<Query> = request_pool.iter().cycle().take(n).copied().collect();
    for backend in [BackendKind::Ivf, BackendKind::Exact, BackendKind::Proximity] {
        let server = OnlineServer::builder()
            .graph(Arc::clone(&graph))
            .frozen(FrozenModel::from_model(&mut model, &graph))
            .item_pool(&items)
            .config(ServingConfig { backend, ..Default::default() })
            .seed(seed)
            .build()
            .expect("server build");
        let warm: Vec<u32> = request_pool.iter().flat_map(|q| [q.user, q.query]).collect();
        server.warm_cache(&warm).expect("warm cache");
        let open = run_load(&server, &requests, &LoadTestSpec::open(backend_qps).num_threads(4))
            .expect("load run");
        let closed =
            run_load(&server, &requests, &LoadTestSpec::closed().num_threads(4).batch_size(16))
                .expect("load run");
        println!(
            "{:>10} {:>10.3} {:>10.3} {:>10.3} {:>12.0}",
            backend.name(),
            open.latency.mean_ms,
            open.latency.p95_ms,
            open.latency.p99_ms,
            closed.achieved_qps()
        );
        json_rows.push(serde_json::json!({
            "config": "backend axis", "backend": backend.name(), "qps": backend_qps,
            "mean_ms": open.latency.mean_ms, "p95_ms": open.latency.p95_ms,
            "p99_ms": open.latency.p99_ms,
            "batch16_requests_per_sec": closed.achieved_qps(),
        }));
    }
    println!("\n(paper shape: low single-digit-ms means; sublinear rt growth with QPS; cache keeps rt flat; batching multiplies peak throughput)");
    write_json("fig9_serving_latency", &serde_json::Value::Array(json_rows));
}
