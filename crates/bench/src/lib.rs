//! Shared harness utilities for the experiment benches.
//!
//! Every table and figure of the paper has a bench target under `benches/`
//! (`harness = false`). Each prints the same rows/series the paper reports,
//! with the paper's reference numbers alongside the measured ones, and also
//! emits machine-readable JSON under `target/experiments/`.
//!
//! Scale control: set `ZOOMER_BENCH_SCALE=smoke|small|full` (default
//! `small`). `smoke` finishes in seconds (CI), `small` gives meaningful
//! shapes in a couple of minutes per experiment, `full` trains longest.

use std::io::Write as _;
use std::path::PathBuf;

use zoomer_core::data::{split_examples, ScaleTier, TaobaoConfig, TaobaoData, TrainTestSplit};
use zoomer_core::model::{CtrModel, ModelConfig, UnifiedCtrModel};
use zoomer_core::train::{train, TrainReport, TrainerConfig};

/// Experiment scale preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchScale {
    Smoke,
    Small,
    Full,
}

impl BenchScale {
    /// Read from `ZOOMER_BENCH_SCALE` (default `small`).
    pub fn from_env() -> Self {
        match std::env::var("ZOOMER_BENCH_SCALE").unwrap_or_default().as_str() {
            "smoke" => BenchScale::Smoke,
            "full" => BenchScale::Full,
            _ => BenchScale::Small,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            BenchScale::Smoke => "smoke",
            BenchScale::Small => "small",
            BenchScale::Full => "full",
        }
    }

    /// Training steps per model for comparison tables.
    pub fn train_steps(self) -> usize {
        match self {
            BenchScale::Smoke => 800,
            BenchScale::Small => 24_000,
            BenchScale::Full => 80_000,
        }
    }

    /// Test examples used for AUC evaluation.
    pub fn eval_sample(self) -> usize {
        match self {
            BenchScale::Smoke => 300,
            BenchScale::Small => 3_000,
            BenchScale::Full => 6_000,
        }
    }

    /// Positive test requests used for HitRate@K.
    pub fn hitrate_requests(self) -> usize {
        match self {
            BenchScale::Smoke => 50,
            BenchScale::Small => 400,
            BenchScale::Full => 1_000,
        }
    }

    /// Dataset config for the million-scale tier, shrunk for smoke runs.
    pub fn million_tier(self, seed: u64) -> TaobaoConfig {
        match self {
            BenchScale::Smoke => TaobaoConfig::tiny(seed),
            _ => ScaleTier::Million.config(seed),
        }
    }
}

/// Print a standard experiment banner.
pub fn banner(experiment: &str, paper_ref: &str, scale: BenchScale, seed: u64) {
    println!("================================================================");
    println!("{experiment}");
    println!("paper reference : {paper_ref}");
    println!("scale preset    : {} (set ZOOMER_BENCH_SCALE=smoke|small|full)", scale.name());
    println!("seed            : {seed}");
    println!("================================================================");
}

/// Write a JSON result blob under the workspace's
/// `target/experiments/<name>.json` (independent of the bench CWD).
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("target/experiments");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{}", serde_json::to_string_pretty(value).unwrap_or_default());
        println!("(json written to {})", path.display());
    }
}

/// Train one preset on a shared dataset; returns the trained model and its
/// report. `fanout`/`hops` of `None` keep preset defaults.
pub fn train_preset(
    data: &TaobaoData,
    split: &TrainTestSplit,
    preset: &str,
    seed: u64,
    steps: usize,
    eval_sample: usize,
    fanout: Option<usize>,
) -> (UnifiedCtrModel, TrainReport) {
    let dd = data.graph.features().dense_dim();
    let config =
        ModelConfig::preset(preset, seed, dd).unwrap_or_else(|| panic!("unknown preset {preset}"));
    let mut model = UnifiedCtrModel::new(config);
    if let Some(k) = fanout {
        model.set_fanout(k);
    }
    let report = train(
        &mut model,
        &data.graph,
        split,
        &TrainerConfig {
            epochs: 1,
            max_steps_per_epoch: Some(steps),
            eval_sample,
            seed,
            ..Default::default()
        },
    );
    (model, report)
}

/// Standard dataset + split for comparison experiments.
pub fn million_dataset(scale: BenchScale, seed: u64) -> (TaobaoData, TrainTestSplit) {
    let data = TaobaoData::generate(scale.million_tier(seed));
    let split = split_examples(data.ctr_examples(), 0.9, seed);
    (data, split)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_small() {
        // (Environment-dependent, but the test environment does not set it.)
        if std::env::var("ZOOMER_BENCH_SCALE").is_err() {
            assert_eq!(BenchScale::from_env(), BenchScale::Small);
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(BenchScale::Smoke.train_steps() < BenchScale::Small.train_steps());
        assert!(BenchScale::Small.train_steps() < BenchScale::Full.train_steps());
        assert!(BenchScale::Smoke.eval_sample() < BenchScale::Full.eval_sample());
    }

    #[test]
    fn smoke_preset_trains_quickly() {
        let scale = BenchScale::Smoke;
        let (data, split) = million_dataset(scale, 9);
        let (_, report) = train_preset(
            &data,
            &split,
            "graphsage",
            9,
            scale.train_steps(),
            scale.eval_sample(),
            None,
        );
        assert_eq!(report.steps, scale.train_steps());
        assert!(report.final_auc > 0.4);
    }
}
