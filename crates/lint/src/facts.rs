//! Phase one of the cross-file analyzer: per-function fact extraction.
//!
//! A lightweight item/block parser over the lexed code-token stream. It is
//! *not* a Rust parser — it recognizes exactly the shapes the cross-file
//! rules need (`fn` items, lock acquisitions, outgoing calls, `Deadline`
//! parameters, metric-name literals) and degrades gracefully on everything
//! else. Two invariants the proptest suite enforces: extraction never
//! panics on any lexed token stream, and every recorded span points back
//! into the token stream it came from (`tok < live_end`,
//! `code_line(tok) == line`).
//!
//! Guard-liveness model (deliberately approximate, biased against false
//! positives):
//!   * a `let g = x.lock()` guard lives to the close of the enclosing
//!     block, or to an earlier `drop(g)`;
//!   * a temporary acquire (`x.lock().field`, `let _ = x.lock()`, a lock
//!     in an `if`/`while` condition) lives to the end of its statement;
//!   * a guard produced by the tail expression of a function (or a
//!     `return` statement) marks that function as guard-returning
//!     (`returns_guard`), so callers model the call site as a virtual
//!     acquisition with the call's own liveness span.

use crate::engine::FileContext;
use crate::lexer::TokenKind;

/// One lock acquisition (or, at link time, a virtual one via a call to a
/// guard-returning function).
#[derive(Clone, Debug)]
pub struct Acquire {
    /// Lock identity: `{crate}::{receiver-name}`, e.g. `serving::state`.
    pub lock: String,
    /// `lock` (Mutex) | `read` | `write` (RwLock sides).
    pub mode: &'static str,
    pub line: u32,
    /// Code-token index of the acquiring ident.
    pub tok: usize,
    /// Code-token index (exclusive bound) where the guard dies.
    pub live_end: usize,
    /// Binding name when the guard is let-bound (for `drop` shortening).
    pub binding: Option<String>,
}

/// One outgoing call site.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub callee: String,
    /// Immediate receiver ident: `self.f()` → `self`, `cache.f()` →
    /// `cache`, `module::f()` → `module`, free `f()` / chained → `None`.
    pub receiver: Option<String>,
    pub line: u32,
    pub tok: usize,
    /// Same liveness span as acquires: where a guard returned by this call
    /// (if the callee turns out to be guard-returning) would die.
    pub live_end: usize,
    /// True when the callee names a closure-typed parameter of the
    /// enclosing function — caller-supplied code.
    pub is_closure_param: bool,
}

/// Facts about one `fn` item.
#[derive(Clone, Debug)]
pub struct FnFact {
    pub name: String,
    pub line: u32,
    pub is_test: bool,
    /// `Deadline`-typed parameter names with a usage flag (does the ident
    /// appear anywhere in the body?). `_`-prefixed names are the explicit
    /// opt-out and are not recorded.
    pub deadline_params: Vec<(String, bool)>,
    /// True for bodyless trait-method declarations.
    pub has_body: bool,
    /// Lock identity + mode when the function hands its caller a guard
    /// (e.g. `self.state.read().unwrap_or_else(…)` as the tail).
    pub returns_guard: Option<(String, &'static str)>,
    pub acquires: Vec<Acquire>,
    pub calls: Vec<CallSite>,
}

/// A literal metric-name site: `.counter("serve.requests")` etc.
#[derive(Clone, Debug)]
pub struct MetricSite {
    /// `counter` | `gauge` | `histogram`.
    pub kind: &'static str,
    pub name: String,
    pub line: u32,
    pub is_test: bool,
}

/// Everything phase two needs to know about one file.
#[derive(Clone, Debug)]
pub struct FileFacts {
    pub path: String,
    /// `crates/serving/src/cache.rs` → `serving`; top-level `src/` → the
    /// root package name.
    pub crate_name: String,
    /// `cache.rs` → `cache`.
    pub file_stem: String,
    pub fns: Vec<FnFact>,
    pub metric_sites: Vec<MetricSite>,
    /// Well-formed `lint: allow` markers, for cross-file suppression.
    pub allow_markers: Vec<(u32, &'static str)>,
}

/// Keywords and call-shaped non-calls the call detector skips.
const NON_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "move", "unsafe", "as", "in",
    "else", "impl", "pub", "use", "mod", "where", "ref", "mut", "dyn", "box", "await", "const",
    "static", "struct", "enum", "trait", "type", "crate", "super", "Some", "Ok", "Err", "None",
];

/// Extract per-function facts from one lexed file.
pub fn extract(ctx: &FileContext) -> FileFacts {
    let (crate_name, file_stem) = crate_and_stem(ctx.path);
    let mut fns = Vec::new();
    let n = ctx.code.len();
    let mut i = 0usize;
    while i < n {
        if ctx.code_text(i) == "fn" && ctx.code_kind(i + 1) == Some(TokenKind::Ident) {
            let after = parse_fn(ctx, i, &mut fns);
            i = after.max(i + 1);
        } else {
            i += 1;
        }
    }
    // Lock identities are recorded as bare receiver names during parsing;
    // qualify them with the owning crate so identity is workspace-global.
    for f in fns.iter_mut() {
        for a in f.acquires.iter_mut() {
            a.lock = format!("{crate_name}::{}", a.lock);
        }
        if let Some((lock, _)) = f.returns_guard.as_mut() {
            *lock = format!("{crate_name}::{lock}");
        }
    }
    let mut metric_sites = Vec::new();
    scan_metric_sites(ctx, &mut metric_sites);
    FileFacts {
        path: ctx.path.to_string(),
        crate_name,
        file_stem,
        fns,
        metric_sites,
        allow_markers: ctx.markers.iter().filter_map(|m| m.rule.map(|r| (m.line, r))).collect(),
    }
}

fn crate_and_stem(path: &str) -> (String, String) {
    let parts: Vec<&str> = path.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "zoomer".to_string()
    };
    let stem = parts.last().map(|f| f.trim_end_matches(".rs").to_string()).unwrap_or_default();
    (crate_name, stem)
}

/// Parse one `fn` starting at code index `at` (the `fn` keyword). Appends
/// the fact (and any nested fns) to `out` and returns the index just past
/// the item.
fn parse_fn(ctx: &FileContext, at: usize, out: &mut Vec<FnFact>) -> usize {
    let n = ctx.code.len();
    let name = ctx.code_text(at + 1).to_string();
    let line = ctx.code_line(at + 1);
    let mut j = at + 2;

    // Generic parameter list: balance `<`/`>`, counting the fused tokens
    // the lexer emits (`<<`, `>>`) and skipping comparisons/arrows.
    let mut closure_types: Vec<String> = Vec::new();
    if ctx.code_text(j) == "<" {
        let close = balance_angles(ctx, j);
        collect_closure_bounds(ctx, j + 1, close, &mut closure_types);
        j = close + 1;
    }
    if ctx.code_text(j) != "(" {
        return j; // not a fn item shape we understand
    }
    let params_open = j;
    let params_close = balance(ctx, j, "(", ")");
    let (deadline_params, mut closure_params) = parse_params(ctx, j + 1, params_close);

    // Return type / where clause: scan to the body `{` or a `;` (trait
    // method declaration, no body).
    j = params_close + 1;
    let mut body_open = None;
    while j < n {
        match ctx.code_text(j) {
            ";" => break,
            "{" => {
                body_open = Some(j);
                break;
            }
            "where" => {
                j = scan_where(ctx, j + 1, &mut closure_types);
                continue;
            }
            "<" => {
                j = balance_angles(ctx, j) + 1;
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    let mut fact = FnFact {
        name,
        line,
        is_test: ctx.is_test_line(line),
        deadline_params,
        has_body: body_open.is_some(),
        returns_guard: None,
        acquires: Vec::new(),
        calls: Vec::new(),
    };
    let Some(open) = body_open else {
        out.push(fact);
        return j + 1;
    };
    // Params whose declared type is a generic bound by Fn* count as
    // closures too (`f: F` with `F: FnOnce(…)`).
    closure_params.extend(generic_typed_params(ctx, params_open, params_close, &closure_types));
    closure_params.sort();
    closure_params.dedup();

    let close = balance(ctx, open, "{", "}");
    parse_body(ctx, open, close, &closure_params, &mut fact, out);
    // Deadline usage: does the param ident appear anywhere in the body?
    for (pname, used) in fact.deadline_params.iter_mut() {
        let mut k = open + 1;
        while k < close {
            if ctx.code_kind(k) == Some(TokenKind::Ident) && ctx.code_text(k) == pname {
                *used = true;
                break;
            }
            k += 1;
        }
    }
    out.push(fact);
    close + 1
}

/// Balance a `(`/`)`-style pair starting at `open`; returns the index of
/// the matching closer (or the end of the stream when unbalanced).
fn balance(ctx: &FileContext, open: usize, l: &str, r: &str) -> usize {
    let n = ctx.code.len();
    let mut depth = 0i64;
    let mut j = open;
    while j < n {
        let t = ctx.code_text(j);
        if t == l {
            depth += 1;
        } else if t == r {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    n.saturating_sub(1)
}

/// Balance a generic-angle region starting at a `<` token. Handles the
/// lexer's fused `<<`/`>>` tokens; ignores `->`/`=>`/`<=`/`>=` (distinct
/// tokens). Bails out on tokens a generic list cannot contain, so `a < b`
/// comparisons never swallow the rest of the file.
fn balance_angles(ctx: &FileContext, open: usize) -> usize {
    let n = ctx.code.len();
    let mut depth = 0i64;
    let mut j = open;
    while j < n {
        match ctx.code_text(j) {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => {
                depth -= 1;
                if depth <= 0 {
                    return j;
                }
            }
            ">>" => {
                depth -= 2;
                if depth <= 0 {
                    return j;
                }
            }
            ";" | "{" | "}" => return j.saturating_sub(1).max(open),
            _ => {}
        }
        j += 1;
    }
    n.saturating_sub(1)
}

/// Collect generic names bound by `Fn`/`FnMut`/`FnOnce` inside a generic
/// list `[from, to)`: `F: FnOnce() -> R` → `F`.
fn collect_closure_bounds(ctx: &FileContext, from: usize, to: usize, out: &mut Vec<String>) {
    let mut k = from.max(1);
    while k < to {
        if ctx.code_text(k) == ":" && ctx.code_kind(k - 1) == Some(TokenKind::Ident) {
            let name = ctx.code_text(k - 1).to_string();
            let mut m = k + 1;
            while m < to && ctx.code_text(m) != "," {
                if matches!(ctx.code_text(m), "Fn" | "FnMut" | "FnOnce") {
                    out.push(name.clone());
                    break;
                }
                m += 1;
            }
            k = m;
        }
        k += 1;
    }
}

/// Scan a `where` clause (from just after the keyword) for closure bounds;
/// returns the index of the token that terminates the clause (`{` or `;`).
fn scan_where(ctx: &FileContext, from: usize, closure_types: &mut Vec<String>) -> usize {
    let n = ctx.code.len();
    let mut k = from.max(1);
    while k < n && ctx.code_text(k) != "{" && ctx.code_text(k) != ";" {
        if ctx.code_text(k) == ":" && ctx.code_kind(k - 1) == Some(TokenKind::Ident) {
            let name = ctx.code_text(k - 1).to_string();
            let mut m = k + 1;
            while m < n && !matches!(ctx.code_text(m), "," | "{" | ";") {
                if matches!(ctx.code_text(m), "Fn" | "FnMut" | "FnOnce") {
                    closure_types.push(name.clone());
                    break;
                }
                m += 1;
            }
            k = m;
            continue;
        }
        k += 1;
    }
    k
}

/// Parse the parameter list `[from, to)`. Returns (deadline params with
/// usage flags, closure-typed param names).
fn parse_params(ctx: &FileContext, from: usize, to: usize) -> (Vec<(String, bool)>, Vec<String>) {
    let mut deadline = Vec::new();
    let mut closures = Vec::new();
    for (name, ty_from, ty_to) in split_params(ctx, from, to) {
        let mut is_deadline = false;
        let mut is_closure = false;
        let mut k = ty_from;
        while k < ty_to {
            match ctx.code_text(k) {
                "Deadline" => is_deadline = true,
                "Fn" | "FnMut" | "FnOnce" => is_closure = true,
                _ => {}
            }
            k += 1;
        }
        if is_deadline && !name.starts_with('_') {
            deadline.push((name.clone(), false));
        }
        if is_closure {
            closures.push(name);
        }
    }
    (deadline, closures)
}

/// Split a parameter list into `(name, type_start, type_end)` entries at
/// top-level commas.
fn split_params(ctx: &FileContext, from: usize, to: usize) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut entry_start = from;
    let mut k = from;
    let mut paren = 0i64;
    while k <= to {
        let t = if k < to { ctx.code_text(k) } else { "," };
        match t {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "<" if k < to => k = balance_angles(ctx, k),
            "," if paren <= 0 => {
                if let Some(entry) = parse_one_param(ctx, entry_start, k) {
                    out.push(entry);
                }
                entry_start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    out
}

fn parse_one_param(ctx: &FileContext, from: usize, to: usize) -> Option<(String, usize, usize)> {
    // `[mut] name : Type` (skip `self` receivers and pattern params).
    let mut k = from;
    while k < to && ctx.code_text(k) == "mut" {
        k += 1;
    }
    if ctx.code_kind(k) != Some(TokenKind::Ident) || ctx.code_text(k + 1) != ":" {
        return None;
    }
    let name = ctx.code_text(k);
    if name == "self" {
        return None;
    }
    Some((name.to_string(), k + 2, to))
}

/// Param names whose declared type mentions one of the closure-bound
/// generic names.
fn generic_typed_params(
    ctx: &FileContext,
    params_open: usize,
    params_close: usize,
    closure_types: &[String],
) -> Vec<String> {
    if closure_types.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (name, ty_from, ty_to) in split_params(ctx, params_open + 1, params_close) {
        let mut k = ty_from;
        while k < ty_to {
            let t = ctx.code_text(k);
            if closure_types.iter().any(|c| c == t) {
                out.push(name.clone());
                break;
            }
            k += 1;
        }
    }
    out
}

/// A pending event inside a statement: an acquire or a call, waiting for
/// its liveness span to be determined.
#[derive(Clone, Copy)]
enum Event {
    Acquire(usize),
    Call(usize),
}

struct Frame {
    /// Paren/bracket depth inside this block (for `;` significance).
    paren: i64,
    /// Code index where the current statement began.
    stmt_start: usize,
    /// Events opened in the current statement.
    stmt_events: Vec<Event>,
    /// Let-bound events that live to block close (or an earlier `drop`).
    block_events: Vec<Event>,
}

/// Walk a fn body `(open, close)`, recording acquires and calls with
/// liveness spans. Nested `fn` items are parsed recursively into `nested`.
fn parse_body(
    ctx: &FileContext,
    open: usize,
    close: usize,
    closure_params: &[String],
    fact: &mut FnFact,
    nested: &mut Vec<FnFact>,
) {
    let mut frames: Vec<Frame> = vec![Frame {
        paren: 0,
        stmt_start: open + 1,
        stmt_events: Vec::new(),
        block_events: Vec::new(),
    }];
    let mut j = open + 1;
    while j < close {
        let t = ctx.code_text(j);
        match t {
            "fn" if ctx.code_kind(j + 1) == Some(TokenKind::Ident) => {
                let after = parse_fn(ctx, j, nested);
                j = after.max(j + 1);
                continue;
            }
            "{" => {
                // A `{` ends the enclosing frame's current statement: a
                // lock in an `if`/`while` condition is a temporary, while
                // `let g = match x.lock() { … }` keeps its binding.
                if let Some(frame) = frames.last_mut() {
                    end_statement(ctx, frame, j, fact);
                }
                frames.push(Frame {
                    paren: 0,
                    stmt_start: j + 1,
                    stmt_events: Vec::new(),
                    block_events: Vec::new(),
                });
            }
            "}" => {
                if let Some(frame) = frames.pop() {
                    let is_fn_frame = frames.is_empty();
                    finish_block(ctx, frame, j, is_fn_frame, fact);
                }
                match frames.last_mut() {
                    Some(f) => f.stmt_start = j + 1,
                    // Defensive: unbalanced body — stop rather than walk on.
                    None => return,
                }
            }
            "(" | "[" => {
                if let Some(f) = frames.last_mut() {
                    f.paren += 1;
                }
            }
            ")" | "]" => {
                if let Some(f) = frames.last_mut() {
                    f.paren -= 1;
                }
            }
            ";" => {
                let at_stmt_level = frames.last().map(|f| f.paren <= 0).unwrap_or(false);
                if at_stmt_level {
                    if let Some(frame) = frames.last_mut() {
                        end_statement(ctx, frame, j, fact);
                        frame.stmt_start = j + 1;
                    }
                }
            }
            "lock" | "read" | "write" if is_acquire_shape(ctx, j) => {
                if let Some(recv) = receiver_of(ctx, j) {
                    let mode = match t {
                        "read" => "read",
                        "write" => "write",
                        _ => "lock",
                    };
                    fact.acquires.push(Acquire {
                        lock: recv,
                        mode,
                        line: ctx.code_line(j),
                        tok: j,
                        live_end: close,
                        binding: None,
                    });
                    if let Some(f) = frames.last_mut() {
                        f.stmt_events.push(Event::Acquire(fact.acquires.len() - 1));
                    }
                }
                j += 3; // skip `( )`
                continue;
            }
            // `drop(binding)` kills a live guard early.
            "drop"
                if ctx.code_text(j + 1) == "("
                    && ctx.code_kind(j + 2) == Some(TokenKind::Ident)
                    && ctx.code_text(j + 3) == ")" =>
            {
                let b = ctx.code_text(j + 2).to_string();
                shorten_binding(&mut frames, fact, &b, j);
                j += 4;
                continue;
            }
            _ => {}
        }
        // Call detection: Ident followed by `(`, not a keyword, not a
        // macro (`ident!(…)` has a `!` between), not a definition.
        if ctx.code_kind(j) == Some(TokenKind::Ident)
            && ctx.code_text(j + 1) == "("
            && !NON_CALLEES.contains(&t)
            && !matches!(t, "lock" | "read" | "write" | "drop")
            && (j == 0 || ctx.code_text(j - 1) != "fn")
        {
            let receiver = call_receiver(ctx, j);
            let is_closure_param = receiver.is_none() && closure_params.iter().any(|c| c == t);
            fact.calls.push(CallSite {
                callee: t.to_string(),
                receiver,
                line: ctx.code_line(j),
                tok: j,
                live_end: close,
                is_closure_param,
            });
            if let Some(f) = frames.last_mut() {
                f.stmt_events.push(Event::Call(fact.calls.len() - 1));
            }
        }
        j += 1;
    }
    // Unbalanced input ran out before the closing brace: finalize whatever
    // frames remain so every span is bounded.
    while let Some(frame) = frames.pop() {
        let is_fn_frame = frames.is_empty();
        finish_block(ctx, frame, close, is_fn_frame, fact);
    }
}

/// Current statement ended at `end_tok` (a `;` or an opening `{`): bind
/// its events to the block or expire them. A `return <acquire>` statement
/// marks the function guard-returning.
fn end_statement(ctx: &FileContext, frame: &mut Frame, end_tok: usize, fact: &mut FnFact) {
    let is_return = ctx.code_text(frame.stmt_start) == "return";
    let binding = statement_binding(ctx, frame.stmt_start);
    for ev in frame.stmt_events.drain(..) {
        if is_return {
            mark_guard_escape(fact, ev);
        }
        match binding {
            Some(ref b) if *b != "_" => {
                if let Event::Acquire(i) = ev {
                    if let Some(a) = fact.acquires.get_mut(i) {
                        a.binding = Some(b.clone());
                    }
                }
                frame.block_events.push(ev);
            }
            _ => set_live_end(fact, ev, end_tok),
        }
    }
}

/// Block closed at `}` (index `brace`): expire remaining events. A pending
/// tail-expression acquire in the fn's own frame marks `returns_guard`.
fn finish_block(
    ctx: &FileContext,
    frame: Frame,
    brace: usize,
    is_fn_frame: bool,
    fact: &mut FnFact,
) {
    let _ = ctx;
    for ev in frame.stmt_events {
        if is_fn_frame {
            mark_guard_escape(fact, ev);
        }
        set_live_end(fact, ev, brace);
    }
    for ev in frame.block_events {
        set_live_end(fact, ev, brace);
    }
}

/// An acquire escaping the function (tail expression or `return`): the
/// function hands its caller a live guard.
fn mark_guard_escape(fact: &mut FnFact, ev: Event) {
    if let Event::Acquire(i) = ev {
        if let Some(a) = fact.acquires.get(i) {
            fact.returns_guard = Some((a.lock.clone(), a.mode));
        }
    }
}

fn set_live_end(fact: &mut FnFact, ev: Event, end: usize) {
    match ev {
        Event::Acquire(i) => {
            if let Some(a) = fact.acquires.get_mut(i) {
                if a.live_end > end {
                    a.live_end = end;
                }
            }
        }
        Event::Call(i) => {
            if let Some(c) = fact.calls.get_mut(i) {
                if c.live_end > end {
                    c.live_end = end;
                }
            }
        }
    }
}

/// `drop(b)` at token `at`: shorten the liveness of the innermost live
/// acquire bound to `b`.
fn shorten_binding(frames: &mut [Frame], fact: &mut FnFact, b: &str, at: usize) {
    for frame in frames.iter_mut().rev() {
        for ev in frame.block_events.iter() {
            if let Event::Acquire(i) = *ev {
                if fact.acquires.get(i).and_then(|a| a.binding.as_deref()) == Some(b) {
                    if let Some(a) = fact.acquires.get_mut(i) {
                        a.live_end = at;
                    }
                    return;
                }
            }
        }
    }
}

/// Does the statement starting at `stmt_start` open with `let [mut] x =`?
fn statement_binding(ctx: &FileContext, stmt_start: usize) -> Option<String> {
    if ctx.code_text(stmt_start) != "let" {
        return None;
    }
    let mut k = stmt_start + 1;
    while ctx.code_text(k) == "mut" {
        k += 1;
    }
    if ctx.code_kind(k) == Some(TokenKind::Ident) && ctx.code_text(k + 1) == "=" {
        return Some(ctx.code_text(k).to_string());
    }
    None
}

/// `.lock()` / `.read()` / `.write()` with zero args.
fn is_acquire_shape(ctx: &FileContext, i: usize) -> bool {
    i > 0
        && ctx.code_text(i - 1) == "."
        && ctx.code_text(i + 1) == "("
        && ctx.code_text(i + 2) == ")"
}

/// Walk the receiver chain backwards from `x.y[z].lock()`'s acquire ident
/// to the nearest field/variable name (skipping balanced `[…]`/`(…)` and
/// `self`). Returns `None` when the chain starts from an expression we
/// cannot name.
fn receiver_of(ctx: &FileContext, acquire: usize) -> Option<String> {
    let mut j = acquire.checked_sub(2)?;
    loop {
        match ctx.code_text(j) {
            ")" | "]" => {
                let closer = ctx.code_text(j);
                let opener = if closer == ")" { "(" } else { "[" };
                let mut depth = 0i64;
                loop {
                    let t = ctx.code_text(j);
                    if t == closer {
                        depth += 1;
                    } else if t == opener {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j = j.checked_sub(1)?;
                }
                j = j.checked_sub(1)?;
            }
            "." | "::" | "?" | "self" => j = j.checked_sub(1)?,
            _ => {
                if ctx.code_kind(j) == Some(TokenKind::Ident) {
                    return Some(ctx.code_text(j).to_string());
                }
                return None;
            }
        }
    }
}

/// Immediate receiver of a call at `tok`: `self.f()` → `self`,
/// `cache.f()` → `cache`, `mod::f()` → `mod`, otherwise `None`.
fn call_receiver(ctx: &FileContext, tok: usize) -> Option<String> {
    let sep = tok.checked_sub(1)?;
    let prev = tok.checked_sub(2)?;
    match ctx.code_text(sep) {
        "." | "::" => {
            let t = ctx.code_text(prev);
            if ctx.code_kind(prev) == Some(TokenKind::Ident) || t == "self" {
                Some(t.to_string())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Literal metric-name sites: `.counter("…")`, `.gauge("…")`,
/// `.histogram("…")`, and the `ingest_cache("prefix", …)` helper which
/// registers `{prefix}.{hits,misses,refreshes,evictions}` counters.
///
/// `format!`-built names with a literal template — e.g.
/// `.counter(&format!("serve.shard.{idx}.batches"))` — are normalized to
/// glob sites (`serve.shard.*.batches`) so the manifest can cover dynamic
/// per-shard metric families with one `*` entry. Only truly dynamic names
/// (a plain variable, a non-literal template) stay out of L008's scope.
fn scan_metric_sites(ctx: &FileContext, out: &mut Vec<MetricSite>) {
    for i in 0..ctx.code.len() {
        if ctx.code_kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let t = ctx.code_text(i);
        let kind = match t {
            "counter" => "counter",
            "gauge" => "gauge",
            "histogram" => "histogram",
            "ingest_cache" => "counter",
            _ => continue,
        };
        if t != "ingest_cache" && (i == 0 || ctx.code_text(i - 1) != ".") {
            continue;
        }
        if ctx.code_text(i + 1) != "(" {
            continue;
        }
        let name = if ctx.code_kind(i + 2) == Some(TokenKind::Str) {
            let Some(name) = str_literal_value(ctx.code_text(i + 2)) else { continue };
            name
        } else if let Some(glob) = format_glob_name(ctx, i + 2) {
            glob
        } else {
            continue; // dynamic name — out of scope for L008
        };
        let line = ctx.code_line(i);
        let is_test = ctx.is_test_line(line);
        if t == "ingest_cache" {
            for suffix in ["hits", "misses", "refreshes", "evictions"] {
                out.push(MetricSite { kind, name: format!("{name}.{suffix}"), line, is_test });
            }
        } else {
            out.push(MetricSite { kind, name, line, is_test });
        }
    }
}

/// Recognize `&format!("…{…}…")` / `format!("…{…}…")` starting at code
/// token `j` and return the template with every `{…}` interpolation
/// replaced by `*` (escaped `{{` / `}}` become literal braces).
fn format_glob_name(ctx: &FileContext, mut j: usize) -> Option<String> {
    if ctx.code_text(j) == "&" {
        j += 1;
    }
    if ctx.code_text(j) != "format" || ctx.code_text(j + 1) != "!" || ctx.code_text(j + 2) != "(" {
        return None;
    }
    if ctx.code_kind(j + 3) != Some(TokenKind::Str) {
        return None;
    }
    let template = str_literal_value(ctx.code_text(j + 3))?;
    let mut glob = String::with_capacity(template.len());
    let mut chars = template.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                glob.push('{');
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                glob.push('}');
            }
            '{' => {
                // Interpolation: skip to the matching close brace.
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(_) => {}
                        None => return None, // unbalanced — not a template
                    }
                }
                glob.push('*');
            }
            '}' => return None, // stray close brace — not a template
            c => glob.push(c),
        }
    }
    Some(glob)
}

/// Unquote a string-literal token's text (handles `"…"` and `r"…"` /
/// `r#"…"#`). Returns `None` for literals with escapes we don't interpret.
fn str_literal_value(raw: &str) -> Option<String> {
    let inner = if let Some(rest) = raw.strip_prefix('r') {
        let hashes = rest.chars().take_while(|&c| c == '#').count();
        let rest = &rest[hashes..];
        rest.strip_prefix('"')?.strip_suffix(&format!("\"{}", "#".repeat(hashes)))?
    } else {
        raw.strip_prefix('"')?.strip_suffix('"')?
    };
    if inner.contains('\\') {
        return None;
    }
    Some(inner.to_string())
}
