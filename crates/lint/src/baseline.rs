//! The reviewed baseline / suppression file (`lint-baseline.txt`).
//!
//! Cross-file findings can be suppressed workspace-wide by a checked-in,
//! code-reviewed baseline entry instead of an inline marker — useful when
//! a finding is acknowledged but its fix is deferred to a follow-up PR.
//! Format, one entry per line:
//!
//! ```text
//! # comment
//! L007 crates/train/src/ps.rs three-phase fix lands with the shard split
//! ```
//!
//! Rules: the reason is mandatory, the rule id must exist, and
//! `crates/serving/` remains a no-allow zone — baseline entries naming it
//! are themselves violations. Entries that no longer match any finding
//! are reported as warnings so the baseline can only shrink.

use crate::engine::{in_no_allow_zone, Severity, Violation, RULES};

pub struct BaselineEntry {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
}

/// Parse the baseline; malformed entries become violations against the
/// baseline file itself.
pub fn parse(baseline_path: &str, text: &str) -> (Vec<BaselineEntry>, Vec<Violation>) {
    let mut entries = Vec::new();
    let mut bad = Vec::new();
    let mut push_bad = |line: u32, msg: String| {
        bad.push(Violation {
            path: baseline_path.to_string(),
            line,
            rule: "BASELINE",
            severity: Severity::Error,
            message: msg,
        });
    };
    for (i, raw) in text.lines().enumerate() {
        let line = (i + 1) as u32;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut parts = l.splitn(3, char::is_whitespace);
        let rule_txt = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");
        let reason = parts.next().unwrap_or("").trim();
        let Some(rule) = RULES.iter().find(|r| **r == rule_txt) else {
            push_bad(line, format!("unknown rule id `{rule_txt}` in baseline entry"));
            continue;
        };
        if path.is_empty() {
            push_bad(line, "baseline entry missing a path".to_string());
            continue;
        }
        if reason.is_empty() {
            push_bad(line, "a baseline entry must carry a reason".to_string());
            continue;
        }
        if in_no_allow_zone(path) {
            push_bad(
                line,
                "crates/serving is a no-allow zone: fix the code instead of baselining it"
                    .to_string(),
            );
            continue;
        }
        entries.push(BaselineEntry { rule, path: path.to_string(), line });
    }
    (entries, bad)
}

/// Drop findings matched by a baseline entry (rule + path); report
/// entries that matched nothing as warnings.
pub fn apply(
    baseline_path: &str,
    entries: &[BaselineEntry],
    violations: Vec<Violation>,
) -> Vec<Violation> {
    let mut used = vec![false; entries.len()];
    let mut out: Vec<Violation> = violations
        .into_iter()
        .filter(|v| match entries.iter().position(|e| e.rule == v.rule && e.path == v.path) {
            Some(i) => {
                used[i] = true;
                false
            }
            None => true,
        })
        .collect();
    for (e, used) in entries.iter().zip(used) {
        if !used {
            out.push(Violation {
                path: baseline_path.to_string(),
                line: e.line,
                rule: "BASELINE",
                severity: Severity::Warning,
                message: format!(
                    "stale baseline entry: no `{}` finding in `{}` — remove the line",
                    e.rule, e.path
                ),
            });
        }
    }
    out
}
