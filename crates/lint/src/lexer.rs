//! A minimal Rust lexer for the lint pass.
//!
//! This is not a full grammar — it is a *tokenizer* that is exactly correct
//! about the things a lexical lint must never confuse: line comments, nested
//! block comments, string literals (plain, raw, byte, byte-raw), char
//! literals vs. lifetimes, and numeric literals (so `1.0f32` is one float
//! token, not an int and a method call). Everything the rules match on —
//! `unwrap`, `unsafe`, `==` — is matched on tokens, so an occurrence inside
//! a string or comment can never fire a rule.

/// Token classification; spans index into the original source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// `'a`, `'static`, `'_` — a lifetime, not a char literal.
    Lifetime,
    /// Integer literal, any base, with or without suffix.
    Int,
    /// Float literal (`1.0`, `1.`, `1e3`, `1.0f32`).
    Float,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, nesting handled.
    BlockComment,
    /// Operator or punctuation; multi-char operators are one token.
    Op,
}

/// One lexed token. `line` is 1-based, from the token's first byte.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Multi-character operators, longest first so lexing is greedy.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "=>", "->", "::", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advance one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.bytes.get(self.pos) == Some(&b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consume a `"`-delimited string body (opening quote already consumed),
    /// honoring `\"` and `\\` escapes.
    fn eat_string_body(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consume a raw string starting at `r` / `br` (prefix already consumed
    /// up to but not including the `#`*n*`"` opener). Returns false if this
    /// is not actually a raw string opener.
    fn eat_raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some(b'"') {
            return false;
        }
        self.bump_n(hashes + 1);
        // Scan for `"` followed by `hashes` hashes.
        while let Some(b) = self.peek(0) {
            self.bump();
            if b == b'"' {
                let mut n = 0usize;
                while n < hashes && self.peek(n) == Some(b'#') {
                    n += 1;
                }
                if n == hashes {
                    self.bump_n(hashes);
                    return true;
                }
            }
        }
        true // unterminated: consume to EOF
    }

    /// Char literal vs lifetime, at a `'` (not yet consumed).
    fn lex_quote(&mut self) -> TokenKind {
        // '\... is always a char literal; 'x' (any single char then ')
        // likewise. Anything else ('a, 'static, '_) is a lifetime.
        if self.peek(1) == Some(b'\\') {
            self.bump(); // '
            self.bump(); // backslash
            self.bump(); // escaped char
                         // Consume to the closing quote (covers \u{…}).
            while let Some(b) = self.peek(0) {
                self.bump();
                if b == b'\'' {
                    break;
                }
            }
            TokenKind::Char
        } else if self.peek(1).is_some() && self.peek(2) == Some(b'\'') {
            self.bump_n(3);
            TokenKind::Char
        } else {
            self.bump();
            self.eat_while(|b| b == b'_' || b.is_ascii_alphanumeric());
            TokenKind::Lifetime
        }
    }

    fn lex_number(&mut self) -> TokenKind {
        let mut float = false;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x') | Some(b'o') | Some(b'b'))
        {
            self.bump_n(2);
            self.eat_while(|b| b == b'_' || b.is_ascii_alphanumeric());
            return TokenKind::Int;
        }
        self.eat_while(|b| b == b'_' || b.is_ascii_digit());
        // Fractional part — but not `1..2` (range) or `1.max()` (method).
        if self.peek(0) == Some(b'.') {
            let after = self.peek(1);
            let is_range = after == Some(b'.');
            let is_method = after.is_some_and(|b| b == b'_' || b.is_ascii_alphabetic());
            if !is_range && !is_method {
                float = true;
                self.bump();
                self.eat_while(|b| b == b'_' || b.is_ascii_digit());
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e') | Some(b'E')) {
            let (sign, first_digit) = match self.peek(1) {
                Some(b'+') | Some(b'-') => (1, self.peek(2)),
                other => (0, other),
            };
            if first_digit.is_some_and(|b| b.is_ascii_digit()) {
                float = true;
                self.bump_n(1 + sign);
                self.eat_while(|b| b == b'_' || b.is_ascii_digit());
            }
        }
        // Type suffix (`1.0f32`, `1u64`).
        let suffix_start = self.pos;
        self.eat_while(|b| b == b'_' || b.is_ascii_alphanumeric());
        let suffix = &self.src[suffix_start..self.pos];
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }
}

/// Tokenize `src`. Never fails: unterminated constructs extend to EOF.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut lx = Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1 };
    let mut out = Vec::new();
    while let Some(b) = lx.peek(0) {
        let start = lx.pos;
        let line = lx.line;
        let kind = match b {
            b if b.is_ascii_whitespace() => {
                lx.bump();
                continue;
            }
            b'/' if lx.peek(1) == Some(b'/') => {
                lx.eat_while(|b| b != b'\n');
                TokenKind::LineComment
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                lx.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            lx.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            lx.bump_n(2);
                        }
                        (Some(_), _) => lx.bump(),
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                lx.bump();
                lx.eat_string_body();
                TokenKind::Str
            }
            b'r' if lx.peek(1) == Some(b'"') || (lx.peek(1) == Some(b'#')) => {
                lx.bump(); // r
                if lx.eat_raw_string() {
                    TokenKind::Str
                } else {
                    // `r#ident` raw identifier.
                    lx.bump(); // #
                    lx.eat_while(|b| b == b'_' || b.is_ascii_alphanumeric());
                    TokenKind::Ident
                }
            }
            b'b' if lx.peek(1) == Some(b'"') => {
                lx.bump_n(2);
                lx.eat_string_body();
                TokenKind::Str
            }
            b'b' if lx.peek(1) == Some(b'\'') => {
                lx.bump(); // b
                lx.lex_quote();
                TokenKind::Char
            }
            b'b' if lx.peek(1) == Some(b'r') && matches!(lx.peek(2), Some(b'"') | Some(b'#')) => {
                lx.bump_n(2);
                lx.eat_raw_string();
                TokenKind::Str
            }
            b'\'' => lx.lex_quote(),
            b if b.is_ascii_digit() => lx.lex_number(),
            b if b == b'_' || b.is_ascii_alphabetic() => {
                lx.eat_while(|b| b == b'_' || b.is_ascii_alphanumeric());
                TokenKind::Ident
            }
            _ => {
                let rest = &src[lx.pos..];
                let op = OPERATORS.iter().find(|op| rest.starts_with(**op));
                match op {
                    Some(op) => lx.bump_n(op.len()),
                    None => lx.bump(),
                }
                TokenKind::Op
            }
        };
        out.push(Token { kind, start, end: lx.pos, line });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_and_ops() {
        let toks = kinds("a.b()==c");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, vec!["a", ".", "b", "(", ")", "==", "c"]);
        assert_eq!(toks[5].0, TokenKind::Op);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"panic!("no")"#; let t = 1;"##;
        let toks = kinds(src);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "panic"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "t"));
    }

    #[test]
    fn raw_identifier_is_ident() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* a /* unwrap() */ b */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn line_comment_to_eol() {
        let toks = kinds("// x.unwrap()\ny");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[1].1, "y");
        assert_eq!(toks[1].0, TokenKind::Ident);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks =
            kinds(r"let c: char = 'a'; fn f<'a>(x: &'a str) {} let q = '\''; let u = '\u{1F600}';");
        let chars = toks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count();
        assert_eq!(chars, 3, "{toks:?}");
        assert_eq!(lifetimes, 2, "{toks:?}");
    }

    #[test]
    fn numbers() {
        let toks = kinds("1 1.0 1. 1e3 1_000.5f32 0xFF 1u64 0..d 1.max(2)");
        let floats: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Float).map(|(_, t)| t.as_str()).collect();
        assert_eq!(floats, vec!["1.0", "1.", "1e3", "1_000.5f32"]);
        let ints: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Int).map(|(_, t)| t.as_str()).collect();
        assert_eq!(ints, vec!["1", "0xFF", "1u64", "0", "1", "2"]);
    }

    #[test]
    fn float_suffix_without_dot() {
        let toks = kinds("1f32 2f64 3i32");
        assert_eq!(toks[0].0, TokenKind::Float);
        assert_eq!(toks[1].0, TokenKind::Float);
        assert_eq!(toks[2].0, TokenKind::Int);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\"two\nline\"\nc";
        let toks = tokenize(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3); // the string starts on line 3
        assert_eq!(toks[3].line, 5); // and c is on line 5
    }

    #[test]
    fn byte_strings_and_chars() {
        let toks = kinds(r#"let a = b"unwrap()"; let c = b'x';"#);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }
}
