//! CLI driver: `zoomer-lint [WORKSPACE_ROOT]`.
//!
//! Scans `crates/` and `src/` under the given root (default: the current
//! directory), prints every violation as `path:line: [RULE] message`, and
//! exits nonzero when any are found — the hard-gate contract `ci.sh`
//! relies on.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: zoomer-lint [WORKSPACE_ROOT]");
        return ExitCode::SUCCESS;
    }
    let root = PathBuf::from(args.first().map(String::as_str).unwrap_or("."));
    let files = match zoomer_lint::scan_paths(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("zoomer-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let violations = match zoomer_lint::lint_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("zoomer-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("zoomer-lint: OK ({} files clean)", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "zoomer-lint: {} violation(s) in {} files scanned",
            violations.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}
