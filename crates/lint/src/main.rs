//! CLI driver: `zoomer-lint [--json] [--explain RULE] [WORKSPACE_ROOT]`.
//!
//! Scans `crates/` and `src/` under the given root (default: the current
//! directory), runs both analysis phases, prints every violation as
//! `path:line: [RULE] message`, and exits nonzero when any *error*
//! severity findings remain — the hard-gate contract `ci.sh` relies on.
//! With `--json` the machine-readable report goes to stdout (the CI
//! artifact) and the human lines to stderr.

use std::path::PathBuf;
use std::process::ExitCode;

use zoomer_lint::{Severity, Violation};

/// One paragraph per rule for `--explain`.
const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "L001",
        "The serving hot path must not contain `unwrap()`, `expect(`, `panic!`, `todo!`, \
              or `unimplemented!` outside tests. A panicking call turns one malformed request \
              into a crashed serving shard. Return a typed error instead.",
    ),
    (
        "L002",
        "Every `unsafe` block needs an immediately preceding `// SAFETY:` comment stating \
              the invariant that makes it sound. Undocumented unsafe is unreviewable.",
    ),
    (
        "L003",
        "`.lock().unwrap()` (and the `.read()`/`.write()`/`.expect(` variants) crashes the \
              thread on a poisoned lock. Recover explicitly with \
              `unwrap_or_else(PoisonError::into_inner)` or handle the Err.",
    ),
    (
        "L004",
        "Library crates must not print to stdout/stderr; return data and let the CLI or \
              bench layer present it.",
    ),
    (
        "L005",
        "Exact float `==`/`!=` in kernel/model code is almost always a numerics bug; \
              compare with a tolerance, or allow-list with a reason if bitwise equality is \
              intended.",
    ),
    (
        "L006",
        "Cross-file deadlock analysis. Re-entry: a call chain that re-acquires a lock \
              whose guard is still live self-deadlocks on a Mutex and starves writers on an \
              RwLock. Ordering: if one path locks A then B and another locks B then A, two \
              threads can each hold one and wait forever on the other. Fix by narrowing guard \
              scopes (drop before calling out) or establishing one global lock order.",
    ),
    (
        "L007",
        "Blocking while a guard is live in `crates/serving` or `crates/train` stalls \
              every thread that wants the lock: a second lock, a channel `recv`/`send`, \
              `join`, `sleep`, or invoking a caller-supplied closure are all convoys waiting \
              to happen on the hot path. Compute outside the critical section, then take the \
              lock briefly to install the result.",
    ),
    (
        "L008",
        "Every metric-name literal (`.counter(\"…\")`, `.gauge(\"…\")`, \
              `.histogram(\"…\")`, `ingest_cache(\"prefix\")`) must appear in \
              metrics-manifest.txt with the same kind. A typo'd metric name silently registers \
              a fresh, never-incremented series and the dashboard flatlines without any error. \
              Manifest entries no code references are reported as stale (warning).",
    ),
    (
        "L009",
        "A function that takes a `Deadline` parameter and neither consults it \
              (`expired()`, `remaining()`, `is_bounded()`) nor forwards it silently converts a \
              bounded call into an unbounded one — the budget vanishes mid-path and the \
              request blows its latency SLO downstream. Thread the deadline through, or rename \
              the parameter `_deadline` to document that the contract is genuinely unbounded.",
    ),
    (
        "ALLOW",
        "Escape-hatch hygiene: `// lint: allow(RULE, reason)` markers must name a real \
              rule and carry a reason, and `crates/serving` is a no-allow zone where any \
              marker is itself a violation.",
    ),
    (
        "BASELINE",
        "lint-baseline.txt hygiene: entries are `RULE path reason`, the reason is \
              mandatory, serving paths are rejected, and entries matching no finding are \
              reported stale so the baseline only ever shrinks.",
    ),
];

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_report(violations: &[Violation], files_scanned: usize) -> String {
    let errors = violations.iter().filter(|v| v.severity == Severity::Error).count();
    let warnings = violations.len() - errors;
    let mut out = String::from("{\n  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \
             \"message\": \"{}\"}}",
            json_escape(&v.path),
            v.line,
            v.rule,
            v.severity.as_str(),
            json_escape(&v.message)
        ));
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files_scanned\": {files_scanned},\n  \"errors\": {errors},\n  \
         \"warnings\": {warnings}\n}}\n"
    ));
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: zoomer-lint [--json] [--explain RULE] [WORKSPACE_ROOT]");
        return ExitCode::SUCCESS;
    }
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(rule) = args.get(pos + 1) else {
            eprintln!("zoomer-lint: --explain needs a rule id (L001..L009, ALLOW, BASELINE)");
            return ExitCode::FAILURE;
        };
        let Some((id, text)) = EXPLANATIONS.iter().find(|(id, _)| id == rule) else {
            eprintln!("zoomer-lint: unknown rule `{rule}`");
            return ExitCode::FAILURE;
        };
        println!("{id}: {}", text.split_whitespace().collect::<Vec<_>>().join(" "));
        return ExitCode::SUCCESS;
    }
    let json = args.iter().any(|a| a == "--json");
    let root = PathBuf::from(
        args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("."),
    );
    let files = match zoomer_lint::scan_paths(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("zoomer-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let violations = match zoomer_lint::lint_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("zoomer-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", json_report(&violations, files.len()));
        for v in &violations {
            eprintln!("{v}");
        }
    } else {
        for v in &violations {
            println!("{v}");
        }
    }
    let errors = violations.iter().filter(|v| v.severity == Severity::Error).count();
    let warnings = violations.len() - errors;
    if errors == 0 {
        if !json {
            println!("zoomer-lint: OK ({} files clean, {warnings} warning(s))", files.len());
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "zoomer-lint: {errors} error(s), {warnings} warning(s) in {} files scanned",
            files.len()
        );
        ExitCode::FAILURE
    }
}
