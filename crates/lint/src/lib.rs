//! `zoomer-lint` — an in-repo static-analysis gate for the Zoomer workspace.
//!
//! Proves, on every CI run, that the serving hot path is panic-free: a
//! hand-written lexer (correct about comments, strings, raw strings, and
//! char literals) feeds a small rule engine with per-path scoping and an
//! explicit, reason-carrying escape hatch. Because the build environment
//! has no reachable registry, the crate is entirely dependency-free — the
//! gate can never be broken by a dependency and always builds.
//!
//! Rules (see DESIGN.md "Static analysis & panic-freedom" for rationale):
//!
//! | rule | scope | property |
//! |------|-------|----------|
//! | L001 | serving/graph/sampler/tensor `src/` | no `unwrap()`/`expect(`/`panic!`/`todo!`/`unimplemented!` outside tests |
//! | L002 | all scanned files | `unsafe` requires an immediately preceding `// SAFETY:` comment |
//! | L003 | all scanned files | no `.lock()`/`.read()`/`.write()` + `.unwrap()`/`.expect(` |
//! | L004 | library crates | no `println!`/`eprintln!` (bench + CLI exempt) |
//! | L005 | tensor/model `src/` | no exact `==`/`!=` between float expressions |
//!
//! Escape hatch: a comment of exactly `lint: allow(RULE, reason)` on the
//! violating line or the line above. The reason is mandatory, and
//! `crates/serving` is a no-allow zone where markers are themselves
//! violations.

pub mod engine;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use engine::Violation;
use engine::{in_no_allow_zone, marker_violations, FileContext};

/// Lint one file's source under its workspace-relative path (forward
/// slashes). This is the whole analysis for one file: rules, escape-hatch
/// suppression, and marker validation.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let ctx = FileContext::new(rel_path, src);
    let mut out: Vec<Violation> = rules::check_file(&ctx)
        .into_iter()
        // Markers never suppress inside the no-allow zone.
        .filter(|v| in_no_allow_zone(rel_path) || !ctx.allowed(v.rule, v.line))
        .collect();
    out.extend(marker_violations(&ctx));
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Directory names that are never scanned: generated output, vendored
/// stand-ins, and test/bench/example code (which is allowed to panic).
const SKIPPED_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "examples", ".git"];

/// Collect the workspace-relative paths of every `.rs` file to scan under
/// `root`: the `crates/` tree and the top-level `src/`.
pub fn scan_paths(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut found = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut found)?;
        }
    }
    let mut rel: Vec<PathBuf> =
        found.into_iter().filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from)).collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIPPED_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`; returns all violations,
/// sorted by path and line.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for rel in scan_paths(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        // Normalize to forward slashes so scoping rules are portable.
        let rel_str =
            rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/");
        out.extend(lint_source(&rel_str, &src));
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(out)
}
