//! `zoomer-lint` — an in-repo static-analysis gate for the Zoomer workspace.
//!
//! Proves, on every CI run, that the serving hot path is panic-free: a
//! hand-written lexer (correct about comments, strings, raw strings, and
//! char literals) feeds a small rule engine with per-path scoping and an
//! explicit, reason-carrying escape hatch. Because the build environment
//! has no reachable registry, the crate is entirely dependency-free — the
//! gate can never be broken by a dependency and always builds.
//!
//! The analysis runs in two phases. Phase one lexes each file and runs the
//! per-file rules (L001–L005) plus fact extraction (`facts`): lock
//! acquisitions with guard-liveness spans, outgoing calls, `Deadline`
//! parameters, metric-name literals. Phase two (`xrules`) links the facts
//! through an approximate call graph and runs the cross-file concurrency
//! and contract rules (L006–L009).
//!
//! Rules (see DESIGN.md "Static analysis & panic-freedom" for rationale):
//!
//! | rule | scope | property |
//! |------|-------|----------|
//! | L001 | serving/graph/sampler/tensor `src/` | no `unwrap()`/`expect(`/`panic!`/`todo!`/`unimplemented!` outside tests |
//! | L002 | all scanned files | `unsafe` requires an immediately preceding `// SAFETY:` comment |
//! | L003 | all scanned files | no `.lock()`/`.read()`/`.write()` + `.unwrap()`/`.expect(` |
//! | L004 | library crates | no `println!`/`eprintln!` (bench + CLI exempt) |
//! | L005 | tensor/model `src/` | no exact `==`/`!=` between float expressions |
//! | L006 | whole workspace | no lock-order cycles or same-lock re-entry across call chains |
//! | L007 | serving/train `src/` | no blocking (second lock, `recv`, `join`, `sleep`, caller-supplied closures) while a guard is live |
//! | L008 | whole workspace | metric-name literals must match `metrics-manifest.txt` (kind + name) |
//! | L009 | whole workspace | `Deadline` parameters must be consulted or forwarded (`_deadline` opts out) |
//!
//! Escape hatch: a comment of exactly `lint: allow(RULE, reason)` on the
//! violating line or the line above, or a reviewed `lint-baseline.txt`
//! entry (`RULE path reason`) for cross-file findings. Reasons are
//! mandatory in both, and `crates/serving` is a no-allow zone where
//! markers and baseline entries are themselves violations.

pub mod baseline;
pub mod engine;
pub mod facts;
pub mod lexer;
pub mod rules;
pub mod xrules;

use std::path::{Path, PathBuf};

use engine::{in_no_allow_zone, marker_violations, FileContext};
pub use engine::{Severity, Violation};

/// Lint one file's source under its workspace-relative path (forward
/// slashes). This is the whole analysis for one file: rules, escape-hatch
/// suppression, and marker validation.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let ctx = FileContext::new(rel_path, src);
    let mut out: Vec<Violation> = rules::check_file(&ctx)
        .into_iter()
        // Markers never suppress inside the no-allow zone.
        .filter(|v| in_no_allow_zone(rel_path) || !ctx.allowed(v.rule, v.line))
        .collect();
    out.extend(marker_violations(&ctx));
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Directory names that are never scanned: generated output, vendored
/// stand-ins, and test/bench/example code (which is allowed to panic).
const SKIPPED_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "examples", ".git"];

/// Collect the workspace-relative paths of every `.rs` file to scan under
/// `root`: the `crates/` tree and the top-level `src/`.
pub fn scan_paths(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut found = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut found)?;
        }
    }
    let mut rel: Vec<PathBuf> =
        found.into_iter().filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from)).collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIPPED_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Well-known file names for the cross-file pass's side inputs.
pub const MANIFEST_PATH: &str = "metrics-manifest.txt";
pub const BASELINE_PATH: &str = "lint-baseline.txt";

/// Lint a whole workspace given as in-memory `(path, source)` pairs: both
/// phases, escape-hatch and baseline suppression, marker validation.
/// `manifest` enables L008; without it the metric checks are skipped.
pub fn lint_workspace(
    files: &[(String, String)],
    manifest: Option<&str>,
    baseline_text: Option<&str>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut all_facts = Vec::new();
    for (path, src) in files {
        out.extend(lint_source(path, src));
        all_facts.push(facts::extract(&FileContext::new(path, src)));
    }
    let mut cross = xrules::check_workspace(&all_facts);
    if let Some(text) = manifest {
        let (entries, bad) = xrules::parse_manifest(MANIFEST_PATH, text);
        cross.extend(bad);
        cross.extend(xrules::check_metrics(&all_facts, MANIFEST_PATH, &entries));
    }
    // Inline allow markers suppress cross-file findings too — except in
    // the no-allow zone, where the markers are themselves violations.
    cross.retain(|v| {
        if in_no_allow_zone(&v.path) {
            return true;
        }
        let Some(f) = all_facts.iter().find(|f| f.path == v.path) else { return true };
        !f.allow_markers
            .iter()
            .any(|&(line, rule)| rule == v.rule && (line == v.line || line + 1 == v.line))
    });
    if let Some(text) = baseline_text {
        let (entries, bad) = baseline::parse(BASELINE_PATH, text);
        cross = baseline::apply(BASELINE_PATH, &entries, cross);
        cross.extend(bad);
    }
    out.extend(cross);
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out
}

/// Lint the whole workspace rooted at `root`: reads every scanned file,
/// plus `metrics-manifest.txt` and `lint-baseline.txt` when present, and
/// runs both phases.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for rel in scan_paths(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        // Normalize to forward slashes so scoping rules are portable.
        let rel_str =
            rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/");
        files.push((rel_str, src));
    }
    let manifest = std::fs::read_to_string(root.join(MANIFEST_PATH)).ok();
    let baseline_text = std::fs::read_to_string(root.join(BASELINE_PATH)).ok();
    Ok(lint_workspace(&files, manifest.as_deref(), baseline_text.as_deref()))
}
