//! Per-file analysis context and the escape-hatch / scoping machinery.
//!
//! The engine owns everything the rules share: the token stream, the
//! comment list, the set of lines that belong to test-only code
//! (`#[cfg(test)]` / `#[test]` items), and the parsed
//! `// lint: allow(RULE, reason)` markers. Rules are pure functions over
//! this context; suppression and marker validation happen here so every
//! rule gets identical escape-hatch semantics.

use crate::lexer::{tokenize, Token, TokenKind};

/// How bad a finding is. Errors gate CI; warnings are advisory (stale
/// manifest/baseline entries that can only be cleaned up, never hidden).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A rule finding, before and after suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub path: String,
    pub line: u32,
    /// `L001`..`L009`, `ALLOW` for a defective escape hatch, or
    /// `BASELINE` for a defective baseline entry.
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = match self.severity {
            Severity::Warning => " [warning]",
            Severity::Error => "",
        };
        write!(f, "{}:{}: [{}]{tag} {}", self.path, self.line, self.rule, self.message)
    }
}

/// Every rule id the allow marker (and the baseline file) accepts.
pub const RULES: &[&str] =
    &["L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009"];

/// A parsed `// lint: allow(RULE, reason)` marker.
#[derive(Clone, Debug)]
pub struct AllowMarker {
    pub line: u32,
    /// `None` when the marker is malformed (unknown rule or missing reason).
    pub rule: Option<&'static str>,
    pub defect: Option<&'static str>,
}

/// One source file, lexed and annotated.
pub struct FileContext<'a> {
    pub path: &'a str,
    pub src: &'a str,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment ("code") tokens.
    pub code: Vec<usize>,
    /// 1-based lines inside `#[cfg(test)]` / `#[test]` items.
    test_lines: Vec<bool>,
    pub markers: Vec<AllowMarker>,
}

impl<'a> FileContext<'a> {
    pub fn new(path: &'a str, src: &'a str) -> Self {
        let tokens = tokenize(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let num_lines = src.lines().count() + 2;
        let mut ctx = Self {
            path,
            src,
            tokens,
            code,
            test_lines: vec![false; num_lines + 1],
            markers: Vec::new(),
        };
        ctx.collect_markers();
        ctx.mark_test_regions();
        ctx
    }

    /// Text of the `i`-th *code* token ("" past the end).
    pub fn code_text(&self, i: usize) -> &str {
        match self.code.get(i) {
            Some(&ti) => self.tokens[ti].text(self.src),
            None => "",
        }
    }

    pub fn code_kind(&self, i: usize) -> Option<TokenKind> {
        self.code.get(i).map(|&ti| self.tokens[ti].kind)
    }

    pub fn code_line(&self, i: usize) -> u32 {
        self.code.get(i).map_or(0, |&ti| self.tokens[ti].line)
    }

    /// Is 1-based `line` inside a test-only item?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Comments (token index into `tokens`) with their start lines.
    pub fn comments(&self) -> impl Iterator<Item = &Token> {
        self.tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    }

    /// End line of a (possibly multi-line block) comment token.
    pub fn comment_end_line(&self, t: &Token) -> u32 {
        t.line + t.text(self.src).matches('\n').count() as u32
    }

    fn collect_markers(&mut self) {
        let mut markers = Vec::new();
        for t in self.tokens.iter() {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            // A marker is a comment that *is* the marker — sigil, optional
            // doc marker, then `lint: allow(...)`. Prose that merely
            // mentions the syntax mid-sentence is not a marker.
            let text = t.text(self.src);
            let body = text.trim_start_matches('/').trim_start_matches(['!', '*']).trim_start();
            let Some(rest) = body.strip_prefix("lint: allow") else { continue };
            let marker = parse_marker(rest);
            markers.push(AllowMarker { line: t.line, rule: marker.0, defect: marker.1 });
        }
        self.markers = markers;
    }

    /// Does a well-formed marker for `rule` cover `line`? A marker covers
    /// its own line (trailing form) and the next line (preceding form).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.markers.iter().any(|m| m.rule == Some(rule) && (m.line == line || m.line + 1 == line))
    }

    /// Scan for `#[test]`-ish attributes and mark their items' line ranges.
    fn mark_test_regions(&mut self) {
        let n = self.code.len();
        let mut i = 0usize;
        while i < n {
            if self.code_text(i) != "#" || self.code_text(i + 1) != "[" {
                i += 1;
                continue;
            }
            // Collect the attribute token range [i+2, close).
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut is_test = false;
            while j < n && depth > 0 {
                match self.code_text(j) {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "test" => is_test = true,
                    _ => {}
                }
                j += 1;
            }
            if !is_test {
                i = j;
                continue;
            }
            let start_line = self.code_line(i);
            // Skip any further attributes, then span the annotated item:
            // to the matching `}` of its first top-level brace, or to a
            // `;` if the item has no body.
            while self.code_text(j) == "#" && self.code_text(j + 1) == "[" {
                let mut d = 1usize;
                j += 2;
                while j < n && d > 0 {
                    match self.code_text(j) {
                        "[" => d += 1,
                        "]" => d -= 1,
                        _ => {}
                    }
                    j += 1;
                }
            }
            let mut paren = 0i32;
            let mut end_line = self.code_line(j.min(n.saturating_sub(1)));
            while j < n {
                match self.code_text(j) {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    ";" if paren == 0 => {
                        end_line = self.code_line(j);
                        break;
                    }
                    "{" if paren == 0 => {
                        let mut braces = 1usize;
                        j += 1;
                        while j < n && braces > 0 {
                            match self.code_text(j) {
                                "{" => braces += 1,
                                "}" => braces -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                        end_line = self.code_line(j.saturating_sub(1));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            for line in start_line..=end_line {
                if let Some(slot) = self.test_lines.get_mut(line as usize) {
                    *slot = true;
                }
            }
            i = j;
        }
    }
}

/// Parse the tail of a marker after `lint: allow`; returns
/// `(well-formed rule, defect description)`.
fn parse_marker(rest: &str) -> (Option<&'static str>, Option<&'static str>) {
    let Some(open) = rest.find('(') else {
        return (None, Some("missing `(RULE, reason)`"));
    };
    let Some(close) = rest.rfind(')') else {
        return (None, Some("unclosed `(`"));
    };
    let inner = &rest[open + 1..close];
    let (rule_txt, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (inner.trim(), ""),
    };
    let Some(rule) = RULES.iter().find(|r| **r == rule_txt) else {
        return (None, Some("unknown rule id"));
    };
    if reason.is_empty() {
        return (None, Some("an allow marker must carry a reason"));
    }
    (Some(rule), None)
}

/// The serving crate is a no-allow zone: the hot path must be clean with no
/// escape hatches at all.
pub fn in_no_allow_zone(path: &str) -> bool {
    path.starts_with("crates/serving/")
}

/// Marker-related violations for a file: malformed markers anywhere, any
/// marker at all inside the no-allow zone.
pub fn marker_violations(ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in &ctx.markers {
        if let Some(defect) = m.defect {
            out.push(Violation {
                path: ctx.path.to_string(),
                line: m.line,
                rule: "ALLOW",
                severity: Severity::Error,
                message: format!("malformed lint: allow marker: {defect}"),
            });
        }
        if in_no_allow_zone(ctx.path) {
            out.push(Violation {
                path: ctx.path.to_string(),
                line: m.line,
                rule: "ALLOW",
                severity: Severity::Error,
                message: "crates/serving is a no-allow zone: fix the code instead of \
                          suppressing the rule"
                    .to_string(),
            });
        }
    }
    out
}
