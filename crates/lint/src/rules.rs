//! The five lint rules, as pure functions over a [`FileContext`].
//!
//! Every rule matches on the lexed code-token stream (never on raw text),
//! so occurrences inside strings and comments cannot fire. Findings are
//! returned un-suppressed; the caller applies escape-hatch markers.

use std::collections::HashSet;

use crate::engine::{FileContext, Severity, Violation};
use crate::lexer::TokenKind;

/// Crates whose `src/` trees form the request-serving hot path.
const HOT_PATH: &[&str] = &[
    "crates/serving/src/",
    "crates/graph/src/",
    "crates/sampler/src/",
    "crates/tensor/src/",
    "crates/obs/src/",
];

/// Crates where exact float equality is a numerics hazard.
const KERNEL_MODEL: &[&str] = &["crates/tensor/src/", "crates/model/src/"];

fn scoped(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Library crates for L004: every `crates/*/src/` tree except the bench
/// harness and this lint tool (both are CLI-facing by design).
fn is_library_source(path: &str) -> bool {
    path.starts_with("crates/")
        && path.contains("/src/")
        && !path.starts_with("crates/bench/")
        && !path.starts_with("crates/lint/")
}

fn violation(ctx: &FileContext, line: u32, rule: &'static str, message: String) -> Violation {
    Violation { path: ctx.path.to_string(), line, rule, severity: Severity::Error, message }
}

/// Run every rule whose path scope covers this file.
pub fn check_file(ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    if scoped(ctx.path, HOT_PATH) {
        l001_no_panicking_calls(ctx, &mut out);
    }
    l002_unsafe_needs_safety_comment(ctx, &mut out);
    l003_no_lock_unwrap(ctx, &mut out);
    if is_library_source(ctx.path) {
        l004_no_println_in_libraries(ctx, &mut out);
    }
    if scoped(ctx.path, KERNEL_MODEL) {
        l005_no_exact_float_equality(ctx, &mut out);
    }
    out
}

/// L001: the hot path must not contain `unwrap()` / `expect(` / `panic!` /
/// `todo!` / `unimplemented!` outside test code. A panicking call turns one
/// malformed request into a crashed serving shard.
fn l001_no_panicking_calls(ctx: &FileContext, out: &mut Vec<Violation>) {
    for i in 0..ctx.code.len() {
        if ctx.code_kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let line = ctx.code_line(i);
        if ctx.is_test_line(line) {
            continue;
        }
        let text = ctx.code_text(i);
        let prev_is_dot = i > 0 && ctx.code_text(i - 1) == ".";
        let hit = match text {
            "unwrap" => prev_is_dot && ctx.code_text(i + 1) == "(" && ctx.code_text(i + 2) == ")",
            "expect" => prev_is_dot && ctx.code_text(i + 1) == "(",
            "panic" | "todo" | "unimplemented" => ctx.code_text(i + 1) == "!",
            _ => false,
        };
        if hit {
            out.push(violation(
                ctx,
                line,
                "L001",
                format!("`{text}` can panic on the serving hot path; return a typed error"),
            ));
        }
    }
}

/// L002: every `unsafe` must be immediately preceded (same line or up to
/// two lines above) by a `// SAFETY:` comment stating the invariant.
fn l002_unsafe_needs_safety_comment(ctx: &FileContext, out: &mut Vec<Violation>) {
    let safety_end_lines: Vec<u32> = ctx
        .comments()
        .filter(|t| t.text(ctx.src).contains("SAFETY:"))
        .map(|t| ctx.comment_end_line(t))
        .collect();
    for i in 0..ctx.code.len() {
        if ctx.code_kind(i) != Some(TokenKind::Ident) || ctx.code_text(i) != "unsafe" {
            continue;
        }
        let line = ctx.code_line(i);
        let documented = safety_end_lines.iter().any(|&end| end <= line && end + 2 >= line);
        if !documented {
            out.push(violation(
                ctx,
                line,
                "L002",
                "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
            ));
        }
    }
}

/// L003: `.lock().unwrap()` (and the `.read()` / `.write()` / `expect`
/// variants) crashes the thread on a poisoned lock. Poison must be handled
/// or explicitly recovered via `into_inner`.
fn l003_no_lock_unwrap(ctx: &FileContext, out: &mut Vec<Violation>) {
    for i in 0..ctx.code.len() {
        if ctx.code_kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let acquire = ctx.code_text(i);
        if !matches!(acquire, "lock" | "read" | "write") {
            continue;
        }
        let shape_matches = i > 0
            && ctx.code_text(i - 1) == "."
            && ctx.code_text(i + 1) == "("
            && ctx.code_text(i + 2) == ")"
            && ctx.code_text(i + 3) == ".";
        if !shape_matches {
            continue;
        }
        let consume = ctx.code_text(i + 4);
        if matches!(consume, "unwrap" | "expect") {
            out.push(violation(
                ctx,
                ctx.code_line(i),
                "L003",
                format!(
                    "`.{acquire}().{consume}(…)` panics on a poisoned lock; recover with \
                     `unwrap_or_else(PoisonError::into_inner)` or handle the Err"
                ),
            ));
        }
    }
}

/// L004: library crates must not write to stdout/stderr; that is the CLI
/// and bench layers' job.
fn l004_no_println_in_libraries(ctx: &FileContext, out: &mut Vec<Violation>) {
    for i in 0..ctx.code.len() {
        if ctx.code_kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let text = ctx.code_text(i);
        if !matches!(text, "println" | "eprintln") || ctx.code_text(i + 1) != "!" {
            continue;
        }
        let line = ctx.code_line(i);
        if ctx.is_test_line(line) {
            continue;
        }
        out.push(violation(
            ctx,
            line,
            "L004",
            format!("`{text}!` in a library crate; return data and let the CLI/bench layer print"),
        ));
    }
}

/// L005: exact `==`/`!=` between float expressions in kernel/model code.
/// Heuristic: an operand is "float" when it is a float literal, an `f32`/
/// `f64` cast target, or an identifier annotated `: f32` / `: f64`
/// somewhere in the same file.
fn l005_no_exact_float_equality(ctx: &FileContext, out: &mut Vec<Violation>) {
    let float_idents = collect_float_idents(ctx);
    let is_float_operand = |i: usize| -> bool {
        match ctx.code_kind(i) {
            Some(TokenKind::Float) => true,
            Some(TokenKind::Ident) => {
                let t = ctx.code_text(i);
                t == "f32" || t == "f64" || float_idents.contains(t)
            }
            _ => false,
        }
    };
    for i in 0..ctx.code.len() {
        let op = ctx.code_text(i);
        if op != "==" && op != "!=" {
            continue;
        }
        let line = ctx.code_line(i);
        if ctx.is_test_line(line) {
            continue;
        }
        // `x == -1.0`: skip a unary minus on the right operand.
        let right = if ctx.code_text(i + 1) == "-" { i + 2 } else { i + 1 };
        if (i > 0 && is_float_operand(i - 1)) || is_float_operand(right) {
            out.push(violation(
                ctx,
                line,
                "L005",
                format!(
                    "exact float `{op}` in kernel/model code; compare with a tolerance \
                     (or allow-list with a reason if bitwise equality is intended)"
                ),
            ));
        }
    }
}

/// Identifiers annotated `: f32` / `: f64` (through `&`, `mut`, and
/// lifetimes) anywhere in the file — params, lets, and struct fields.
fn collect_float_idents<'a>(ctx: &'a FileContext) -> HashSet<&'a str> {
    let mut set = HashSet::new();
    for i in 1..ctx.code.len() {
        if ctx.code_text(i) != ":" || ctx.code_kind(i - 1) != Some(TokenKind::Ident) {
            continue;
        }
        let mut j = i + 1;
        while matches!(ctx.code_text(j), "&" | "mut")
            || ctx.code_kind(j) == Some(TokenKind::Lifetime)
        {
            j += 1;
        }
        if matches!(ctx.code_text(j), "f32" | "f64") {
            set.insert(ctx.code_text(i - 1));
        }
    }
    set
}
