//! Phase two of the cross-file analyzer: link per-file facts through an
//! approximate call graph and run the concurrency & contract rules.
//!
//! | rule | property |
//! |------|----------|
//! | L006 | lock-order cycles and same-lock re-entry across call chains |
//! | L007 | blocking while a guard is live in serving/train hot paths |
//! | L008 | metric-name literals must match `metrics-manifest.txt` |
//! | L009 | `Deadline` parameters must be consulted or forwarded |
//!
//! Call resolution is heuristic and deliberately biased toward *not*
//! resolving: an unresolved call contributes no effects, so imprecision
//! makes the analyzer quieter, never noisier. The three tiers:
//!   (a) receiver `self` → functions in the same file;
//!   (b) receiver ident names another file's stem → that file's functions
//!       (same crate preferred) — `self.cache.get_many(…)` links to
//!       `cache.rs` because the field follows the module naming;
//!   (c) a globally unique function name, unless it is on the deny list of
//!       ubiquitous std-ish names (`len`, `get`, `insert`, …).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::engine::{Severity, Violation};
use crate::facts::{Acquire, FileFacts};

/// Hot-path scope for L007: the crates where blocking under a live guard
/// stalls request serving or training throughput.
const L007_SCOPE: &[&str] = &["crates/serving/src/", "crates/train/src/"];

/// Callees that (can) block the calling thread.
const BLOCKING: &[&str] = &[
    "recv",
    "recv_timeout",
    "join",
    "sleep",
    "park",
    "park_timeout",
    "wait",
    "wait_timeout",
    "send",
];

/// `SearchBackend` entry points for the L009 message.
const SEARCH_ENTRY: &[&str] =
    &["search_batch", "search_batch_deadline", "exact_search", "offline_rank_batch"];

/// Ubiquitous method names the unique-global-name fallback (tier c) must
/// never resolve: one crate defining `len` must not capture every `.len()`
/// in the workspace. Receiver-based tiers are unaffected.
const DENY: &[&str] = &[
    "len",
    "get",
    "get_mut",
    "insert",
    "push",
    "pop",
    "new",
    "clone",
    "entry",
    "or_insert",
    "or_insert_with",
    "unwrap_or_else",
    "unwrap_or",
    "unwrap_or_default",
    "iter",
    "iter_mut",
    "into_iter",
    "map",
    "set",
    "remove",
    "contains",
    "contains_key",
    "clear",
    "extend",
    "next",
    "collect",
    "min",
    "max",
    "abs",
    "sqrt",
    "from",
    "into",
    "to_string",
    "as_str",
    "as_ref",
    "as_mut",
    "split",
    "trim",
    "starts_with",
    "ends_with",
    "push_str",
    "with_capacity",
    "default",
    "clamp",
    "powi",
    "powf",
    "exp",
    "ln",
    "floor",
    "ceil",
    "round",
    "to_vec",
    "as_slice",
    "chunks",
    "windows",
    "zip",
    "enumerate",
    "filter",
    "filter_map",
    "fold",
    "sum",
    "count",
    "any",
    "all",
    "find",
    "position",
    "sort",
    "sort_by",
    "sort_by_key",
    "rev",
    "take",
    "skip",
    "flat_map",
    "flatten",
    "cloned",
    "copied",
    "last",
    "first",
    "is_empty",
    "resize",
    "truncate",
    "swap",
    "split_at",
    "binary_search",
    "retain",
    "dedup",
    "keys",
    "values",
    "values_mut",
    "range",
    "append",
    "borrow",
    "borrow_mut",
    "to_owned",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "fmt",
    "write_str",
    "elapsed",
    "now",
    "saturating_sub",
    "saturating_add",
    "checked_sub",
    "checked_add",
    "wrapping_add",
    "min_by",
    "max_by",
    "unwrap",
    "expect",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "and_then",
    "or_else",
    "take_while",
    "skip_while",
    "step_by",
    "join_all",
    "get_or_insert_with",
    "to_le_bytes",
    "from_le_bytes",
];

/// A function's identity in the linked workspace.
type FnId = (usize, usize); // (file index, fn index)

struct Linked<'a> {
    files: &'a [FileFacts],
    /// fn name → every FnId carrying it.
    by_name: HashMap<&'a str, Vec<FnId>>,
    /// file stem → file indices.
    by_stem: HashMap<&'a str, Vec<usize>>,
    /// Per-fn resolved callee for each call site (indexed like `calls`).
    resolved: Vec<Vec<Vec<Option<FnId>>>>,
    /// Transitive lock effects per fn: (lock identity, acquire mode).
    effects: Vec<Vec<BTreeSet<(String, &'static str)>>>,
}

fn link<'a>(files: &'a [FileFacts]) -> Linked<'a> {
    let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
    let mut by_stem: HashMap<&str, Vec<usize>> = HashMap::new();
    for (fi, f) in files.iter().enumerate() {
        by_stem.entry(f.file_stem.as_str()).or_default().push(fi);
        for (gi, g) in f.fns.iter().enumerate() {
            by_name.entry(g.name.as_str()).or_default().push((fi, gi));
        }
    }
    let mut linked = Linked { files, by_name, by_stem, resolved: Vec::new(), effects: Vec::new() };
    // Resolve every call site once.
    let mut resolved = Vec::with_capacity(files.len());
    for (fi, f) in files.iter().enumerate() {
        let mut per_fn = Vec::with_capacity(f.fns.len());
        for g in &f.fns {
            per_fn.push(
                g.calls
                    .iter()
                    .map(|c| resolve(&linked, fi, &c.callee, c.receiver.as_deref()))
                    .collect(),
            );
        }
        resolved.push(per_fn);
    }
    linked.resolved = resolved;
    // Effects fixpoint: direct acquires ∪ resolved callees' effects.
    let mut effects: Vec<Vec<BTreeSet<(String, &'static str)>>> = files
        .iter()
        .map(|f| {
            f.fns
                .iter()
                .map(|g| g.acquires.iter().map(|a| (a.lock.clone(), a.mode)).collect())
                .collect()
        })
        .collect();
    for _ in 0..64 {
        let mut changed = false;
        for (fi, f) in files.iter().enumerate() {
            for gi in 0..f.fns.len() {
                let mut add: Vec<(String, &'static str)> = Vec::new();
                for target in linked.resolved[fi][gi].iter().flatten() {
                    for e in &effects[target.0][target.1] {
                        if !effects[fi][gi].contains(e) {
                            add.push(e.clone());
                        }
                    }
                }
                if !add.is_empty() {
                    changed = true;
                    effects[fi][gi].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }
    linked.effects = effects;
    linked
}

/// Resolve one call site to a defining fn, or `None` (no effects assumed).
fn resolve(linked: &Linked, file: usize, callee: &str, receiver: Option<&str>) -> Option<FnId> {
    let same_file = |fi: usize| -> Option<FnId> {
        linked.files[fi].fns.iter().position(|g| g.name == callee).map(|gi| (fi, gi))
    };
    match receiver {
        Some("self") => same_file(file),
        Some(r) => {
            let stems = linked.by_stem.get(r)?;
            let here = &linked.files[file].crate_name;
            let mut candidates: Vec<FnId> = stems.iter().filter_map(|&fi| same_file(fi)).collect();
            if candidates.len() > 1 {
                candidates.retain(|&(fi, _)| &linked.files[fi].crate_name == here);
            }
            match candidates.as_slice() {
                [one] => Some(*one),
                _ => None,
            }
        }
        None => {
            if DENY.contains(&callee) {
                return None;
            }
            match linked.by_name.get(callee).map(Vec::as_slice) {
                Some([one]) => Some(*one),
                _ => None,
            }
        }
    }
}

/// Direct acquires plus virtual ones: a call resolving to a
/// guard-returning fn acts as an acquisition with the call's liveness.
fn guards_of(linked: &Linked, fi: usize, gi: usize) -> Vec<Acquire> {
    let g = &linked.files[fi].fns[gi];
    let mut out = g.acquires.clone();
    for (ci, c) in g.calls.iter().enumerate() {
        if let Some((tfi, tgi)) = linked.resolved[fi][gi][ci] {
            if let Some((lock, mode)) = &linked.files[tfi].fns[tgi].returns_guard {
                out.push(Acquire {
                    lock: lock.clone(),
                    mode,
                    line: c.line,
                    tok: c.tok,
                    live_end: c.live_end,
                    binding: None,
                });
            }
        }
    }
    out
}

/// Shortest call chain (fn names) from `start` to a fn that directly
/// acquires `lock`, for L006 witness messages.
fn chain_to_lock(linked: &Linked, start: FnId, lock: &str) -> Vec<String> {
    let mut parent: HashMap<FnId, FnId> = HashMap::new();
    let mut queue = VecDeque::from([start]);
    let mut seen: BTreeSet<FnId> = BTreeSet::from([start]);
    while let Some(id) = queue.pop_front() {
        let g = &linked.files[id.0].fns[id.1];
        if g.acquires.iter().any(|a| a.lock == lock)
            || g.returns_guard.as_ref().is_some_and(|(l, _)| l == lock)
        {
            let mut chain = vec![g.name.clone()];
            let mut cur = id;
            while let Some(&p) = parent.get(&cur) {
                chain.push(linked.files[p.0].fns[p.1].name.clone());
                cur = p;
            }
            chain.reverse();
            return chain;
        }
        for target in linked.resolved[id.0][id.1].iter().flatten() {
            if seen.insert(*target) {
                parent.insert(*target, id);
                queue.push_back(*target);
            }
        }
    }
    vec![linked.files[start.0].fns[start.1].name.clone()]
}

fn violation(
    path: &str,
    line: u32,
    rule: &'static str,
    severity: Severity,
    msg: String,
) -> Violation {
    Violation { path: path.to_string(), line, rule, severity, message: msg }
}

/// Run L006/L007/L009 over the linked workspace.
pub fn check_workspace(files: &[FileFacts]) -> Vec<Violation> {
    let linked = link(files);
    let mut out = Vec::new();
    // Lock-order edges (held → acquired) with one witness each.
    let mut edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            if g.is_test {
                continue;
            }
            let guards = guards_of(&linked, fi, gi);
            let mut reported: BTreeSet<(u32, String, &'static str)> = BTreeSet::new();
            let hot = L007_SCOPE.iter().any(|p| f.path.starts_with(p));
            for a in &guards {
                // Other acquisitions (direct or virtual) inside a's span.
                for b in &guards {
                    if !(a.tok < b.tok && b.tok < a.live_end) {
                        continue;
                    }
                    if b.lock == a.lock {
                        if !(a.mode == "read" && b.mode == "read")
                            && reported.insert((b.line, b.lock.clone(), "L006"))
                        {
                            out.push(violation(
                                &f.path,
                                b.line,
                                "L006",
                                Severity::Error,
                                format!(
                                    "`{}` re-acquires `{}` while its {} guard (line {}) is \
                                     still live — self-deadlock on a Mutex, writer-starvation \
                                     on an RwLock",
                                    g.name, b.lock, a.mode, a.line
                                ),
                            ));
                        }
                    } else {
                        edges.insert(
                            (a.lock.clone(), b.lock.clone()),
                            (f.path.clone(), b.line, g.name.clone()),
                        );
                        if hot && reported.insert((b.line, b.lock.clone(), "L007")) {
                            out.push(violation(
                                &f.path,
                                b.line,
                                "L007",
                                Severity::Error,
                                format!(
                                    "`{}` acquires `{}` while the `{}` guard (line {}) is \
                                     live on a hot path; narrow the first guard's scope",
                                    g.name, b.lock, a.lock, a.line
                                ),
                            ));
                        }
                    }
                }
                // Calls inside a's span.
                for (ci, c) in g.calls.iter().enumerate() {
                    if !(a.tok < c.tok && c.tok < a.live_end) {
                        continue;
                    }
                    if hot
                        && BLOCKING.contains(&c.callee.as_str())
                        && reported.insert((c.line, c.callee.clone(), "L007"))
                    {
                        out.push(violation(
                            &f.path,
                            c.line,
                            "L007",
                            Severity::Error,
                            format!(
                                "`{}` calls blocking `{}` while the `{}` guard (line {}) is \
                                 live on a hot path; drop the guard first",
                                g.name, c.callee, a.lock, a.line
                            ),
                        ));
                    }
                    if hot
                        && c.is_closure_param
                        && reported.insert((c.line, c.callee.clone(), "L007"))
                    {
                        out.push(violation(
                            &f.path,
                            c.line,
                            "L007",
                            Severity::Error,
                            format!(
                                "`{}` invokes caller-supplied closure `{}` while the `{}` \
                                 guard (line {}) is live on a hot path; compute outside the \
                                 critical section",
                                g.name, c.callee, a.lock, a.line
                            ),
                        ));
                    }
                    let Some(target) = linked.resolved[fi][gi][ci] else { continue };
                    // Skip the virtual-acquire double report: a call to a
                    // guard-returning fn was already handled as an acquire.
                    let target_rg = linked.files[target.0].fns[target.1].returns_guard.as_ref();
                    for (lock, mode) in &linked.effects[target.0][target.1] {
                        if target_rg.is_some_and(|(l, _)| l == lock) {
                            continue;
                        }
                        if *lock == a.lock {
                            if !(a.mode == "read" && *mode == "read")
                                && reported.insert((c.line, lock.clone(), "L006"))
                            {
                                let chain = chain_to_lock(&linked, target, lock).join(" → ");
                                out.push(violation(
                                    &f.path,
                                    c.line,
                                    "L006",
                                    Severity::Error,
                                    format!(
                                        "`{}` holds the `{}` {} guard (line {}) across a call \
                                         chain that re-acquires it: {} → {}",
                                        g.name, a.lock, a.mode, a.line, g.name, chain
                                    ),
                                ));
                            }
                        } else {
                            edges.insert(
                                (a.lock.clone(), lock.clone()),
                                (f.path.clone(), c.line, g.name.clone()),
                            );
                            if hot && reported.insert((c.line, lock.clone(), "L007")) {
                                out.push(violation(
                                    &f.path,
                                    c.line,
                                    "L007",
                                    Severity::Error,
                                    format!(
                                        "`{}` calls `{}` (which acquires `{}`) while the \
                                         `{}` guard (line {}) is live on a hot path",
                                        g.name, c.callee, lock, a.lock, a.line
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            // L009: Deadline parameters must be consulted or forwarded.
            if g.has_body {
                for (pname, used) in &g.deadline_params {
                    if *used {
                        continue;
                    }
                    let hits_backend =
                        g.calls.iter().any(|c| SEARCH_ENTRY.contains(&c.callee.as_str()));
                    let tail = if hits_backend {
                        "; the budget is dropped before reaching the SearchBackend call"
                    } else {
                        " (rename to `_deadline` only if the contract is genuinely unbounded)"
                    };
                    out.push(violation(
                        &f.path,
                        g.line,
                        "L009",
                        Severity::Error,
                        format!(
                            "`{}` takes `Deadline` parameter `{pname}` but never consults or \
                             forwards it{tail}",
                            g.name
                        ),
                    ));
                }
            }
        }
    }
    out.extend(lock_order_cycles(&edges));
    out
}

/// Detect cycles in the lock-order graph; one violation per strongly
/// connected component, anchored at the witness of its smallest edge.
fn lock_order_cycles(edges: &BTreeMap<(String, String), (String, u32, String)>) -> Vec<Violation> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (x, y) in edges.keys() {
        adj.entry(x.as_str()).or_default().insert(y.as_str());
    }
    // Path of at least one edge from `from` to `to` (so `reachable(x, x)`
    // means x sits on a cycle).
    let reachable = |from: &str, to: &str| -> bool {
        let mut queue: VecDeque<&str> = adj.get(from).into_iter().flatten().copied().collect();
        let mut seen: BTreeSet<&str> = queue.iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            if n == to {
                return true;
            }
            for &m in adj.get(n).into_iter().flatten() {
                if seen.insert(m) {
                    queue.push_back(m);
                }
            }
        }
        false
    };
    let mut out = Vec::new();
    let mut reported_components: BTreeSet<BTreeSet<&str>> = BTreeSet::new();
    for ((x, y), (path, line, fn_name)) in edges {
        if !reachable(y, x) {
            continue; // edge is not part of a cycle
        }
        // Component = every lock mutually reachable with x.
        let component: BTreeSet<&str> =
            adj.keys().copied().filter(|&l| reachable(x, l) && reachable(l, x)).collect();
        if !reported_components.insert(component.clone()) {
            continue;
        }
        let locks: Vec<&str> = component.into_iter().collect();
        out.push(Violation {
            path: path.clone(),
            line: *line,
            rule: "L006",
            severity: Severity::Error,
            message: format!(
                "lock-order cycle between {{{}}}: `{fn_name}` acquires `{y}` while holding \
                 `{x}`, but another path takes them in the opposite order — establish a \
                 single global order",
                locks.join(", ")
            ),
        });
    }
    out
}

/// One parsed line of `metrics-manifest.txt`.
pub struct ManifestEntry {
    pub kind: String,
    pub name: String,
    pub line: u32,
}

/// Parse the manifest (`kind name` per line, `#` comments). Malformed
/// lines become violations against the manifest itself.
pub fn parse_manifest(path: &str, text: &str) -> (Vec<ManifestEntry>, Vec<Violation>) {
    let mut entries = Vec::new();
    let mut bad = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = (i + 1) as u32;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut parts = l.split_whitespace();
        let (kind, name) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        if !matches!(kind, "counter" | "gauge" | "histogram") || name.is_empty() {
            bad.push(violation(
                path,
                line,
                "L008",
                Severity::Error,
                format!("malformed manifest line `{l}`; expected `counter|gauge|histogram name`"),
            ));
            continue;
        }
        entries.push(ManifestEntry { kind: kind.to_string(), name: name.to_string(), line });
    }
    (entries, bad)
}

/// `*`-wildcard match: does `pattern` (where each `*` matches any run of
/// characters) cover `text`? Metric names are ASCII dotted paths, so plain
/// byte slicing is safe.
fn glob_covers(pattern: &str, text: &str) -> bool {
    match pattern.find('*') {
        None => pattern == text,
        Some(i) => {
            let (pre, rest) = (&pattern[..i], &pattern[i + 1..]);
            text.len() >= pre.len()
                && text.starts_with(pre)
                && (0..=text.len() - pre.len())
                    .any(|skip| glob_covers(rest, &text[pre.len() + skip..]))
        }
    }
}

/// Do a metric site and a manifest entry name the same metric (family)?
/// Either side may carry `*` wildcards: a `serve.shard.*.batches` manifest
/// entry covers literal per-shard sites, and the same glob produced by a
/// `format!`-built site matches the manifest entry verbatim.
fn metric_names_match(site: &str, entry: &str) -> bool {
    site == entry || glob_covers(entry, site) || glob_covers(site, entry)
}

/// L008: every literal metric site must appear in the manifest with the
/// right kind; manifest entries no site references are stale (warning).
/// Sites and entries may both use `*` globs (see `metric_names_match`).
pub fn check_metrics(
    files: &[FileFacts],
    manifest_path: &str,
    manifest: &[ManifestEntry],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut entry_seen = vec![false; manifest.len()];
    for f in files {
        for s in &f.metric_sites {
            let mut name_matched = false;
            let mut kind_ok = false;
            let mut wrong_kind: Option<&str> = None;
            for (ei, e) in manifest.iter().enumerate() {
                if metric_names_match(&s.name, &e.name) {
                    entry_seen[ei] = true;
                    name_matched = true;
                    if e.kind == s.kind {
                        kind_ok = true;
                    } else {
                        wrong_kind = Some(e.kind.as_str());
                    }
                }
            }
            if s.is_test {
                continue;
            }
            if !name_matched {
                out.push(violation(
                    &f.path,
                    s.line,
                    "L008",
                    Severity::Error,
                    format!(
                        "metric `{}` ({}) is not in {manifest_path}; add it to the manifest \
                         or fix the name (typo'd metrics vanish from dashboards silently)",
                        s.name, s.kind
                    ),
                ));
            } else if !kind_ok {
                out.push(violation(
                    &f.path,
                    s.line,
                    "L008",
                    Severity::Error,
                    format!(
                        "metric `{}` used as a {} here but declared as a {} in {manifest_path}",
                        s.name,
                        s.kind,
                        wrong_kind.unwrap_or("different kind"),
                    ),
                ));
            }
        }
    }
    for (e, seen) in manifest.iter().zip(entry_seen) {
        if !seen {
            out.push(violation(
                manifest_path,
                e.line,
                "L008",
                Severity::Warning,
                format!(
                    "manifest entry `{}` is referenced by no metric site; remove it or wire \
                     the metric back up",
                    e.name
                ),
            ));
        }
    }
    out
}
