//! Property tests for the fact-extraction phase.
//!
//! The extractor runs over every file in the workspace on every CI run, so
//! it must never panic — not on truncated functions, unbalanced braces,
//! keyword soup, or raw strings — and every span it records must point back
//! into the token stream it came from. Inputs are built from a pool of
//! adversarial source fragments (the vendored proptest has no
//! `prop_flat_map`, so sequences are index vectors mapped over the pool).

use proptest::prelude::*;
use zoomer_lint::engine::FileContext;
use zoomer_lint::facts;

/// Fragments chosen to stress the parser's failure modes: unterminated
/// bodies, nested generics with fused `>>`, guard bindings, closures,
/// metric literals, raw strings, and plain junk.
const FRAGMENTS: &[&str] = &[
    "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); g.use_it(); }\n",
    "fn g(x: &RwLock<Vec<u32>>) -> u32 { x.read().unwrap().len() as u32 }\n",
    "fn open(\n",
    "}\n",
    "{ { {\n",
    "fn fn fn\n",
    "impl Foo { fn method(&self) { self.inner.write().unwrap(); } }\n",
    "fn h<T: FnOnce() -> Result<Vec<u32>, Box<dyn Error>>>(f: T) { f(); }\n",
    "let x = reg.counter(\"a.b.c\");\n",
    "reg.histogram(r#\"raw.name\"#).observe(1);\n",
    "fn d(deadline: &Deadline) {\n",
    "return self.state.read().unwrap();\n",
    "if m.lock().unwrap().is_empty() { drop(g); }\n",
    "// comment with fn and lock() inside\n",
    "/* unterminated block comment\n",
    "\"unterminated string\n",
    "fn w() where F: Fn() -> u32 { }\n",
    "match x.lock() { Ok(g) => g, Err(e) => e.into_inner() }\n",
    "let _ = a << b >> c;\n",
    "#[test]\nfn t() { rx.recv().unwrap(); }\n",
    "::<>();;;\n",
];

fn assemble(indices: &[usize]) -> String {
    indices.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect()
}

proptest! {
    /// Extraction must succeed (no panic) on any fragment combination.
    #[test]
    fn extract_never_panics(indices in prop::collection::vec(0usize..64, 0..24)) {
        let src = assemble(&indices);
        let ctx = FileContext::new("crates/serving/src/fuzz.rs", &src);
        let _ = facts::extract(&ctx);
    }

    /// Every recorded span must round-trip: token indices stay inside the
    /// code-token stream, liveness ends at or after the acquire site, and
    /// the cached line number matches what the context reports for the
    /// token today.
    #[test]
    fn spans_round_trip(indices in prop::collection::vec(0usize..64, 0..24)) {
        let src = assemble(&indices);
        let ctx = FileContext::new("crates/train/src/fuzz.rs", &src);
        let f = facts::extract(&ctx);
        for func in &f.fns {
            for a in &func.acquires {
                prop_assert!(a.tok < a.live_end, "acquire dies before it starts: {a:?}");
                prop_assert!(a.live_end <= ctx.code.len(), "liveness past EOF: {a:?}");
                prop_assert_eq!(ctx.code_line(a.tok), a.line);
                prop_assert!(!a.lock.is_empty());
            }
            for c in &func.calls {
                prop_assert!(c.tok < c.live_end, "call dies before it starts: {c:?}");
                prop_assert!(c.live_end <= ctx.code.len(), "liveness past EOF: {c:?}");
                prop_assert_eq!(ctx.code_line(c.tok), c.line);
                prop_assert!(!c.callee.is_empty());
            }
        }
        for m in &f.metric_sites {
            prop_assert!(!m.name.is_empty());
            prop_assert!(m.line >= 1, "metric site without a source line: {m:?}");
        }
    }

    /// Fact extraction is deterministic: same source, same facts.
    #[test]
    fn extract_is_deterministic(indices in prop::collection::vec(0usize..64, 0..16)) {
        let src = assemble(&indices);
        let ctx = FileContext::new("crates/graph/src/fuzz.rs", &src);
        let a = facts::extract(&ctx);
        let b = facts::extract(&ctx);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
