//! Fixture-based self-tests for every zoomer-lint rule: at least one true
//! positive and one false-positive guard per rule, plus the escape-hatch and
//! no-allow-zone semantics. Fixtures are inline strings fed through
//! [`zoomer_lint::lint_source`] under hot-path / library / offline paths, so
//! the suite exercises exactly the scoping the real scan uses.

use zoomer_lint::{lint_source, Violation};

const HOT: &str = "crates/serving/src/fixture.rs";
const GRAPH: &str = "crates/graph/src/fixture.rs";
const KERNEL: &str = "crates/tensor/src/fixture.rs";
const LIBRARY: &str = "crates/model/src/fixture.rs";
const OFFLINE: &str = "crates/train/src/fixture.rs";
const BENCH: &str = "crates/bench/src/fixture.rs";

fn rules_at(violations: &[Violation], line: u32) -> Vec<&'static str> {
    violations.iter().filter(|v| v.line == line).map(|v| v.rule).collect()
}

fn has(violations: &[Violation], rule: &str) -> bool {
    violations.iter().any(|v| v.rule == rule)
}

// ---------------------------------------------------------------- L001

#[test]
fn l001_flags_panicking_calls_in_hot_path_code() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               \x20   let a = x.unwrap();\n\
               \x20   let b = x.expect(\"boom\");\n\
               \x20   panic!(\"no\");\n\
               \x20   todo!();\n\
               \x20   unimplemented!()\n\
               }\n";
    let v = lint_source(HOT, src);
    for line in 2..=6 {
        assert_eq!(rules_at(&v, line), vec!["L001"], "line {line}: {v:?}");
    }
}

#[test]
fn l001_ignores_offline_crates_and_test_code() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(lint_source(OFFLINE, src).is_empty(), "offline crates may unwrap");

    let test_src = "fn ok() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                    \x20   #[test]\n\
                    \x20   fn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }\n\
                    }\n";
    assert!(
        lint_source(HOT, test_src).is_empty(),
        "test regions are exempt even on the hot path: {:?}",
        lint_source(HOT, test_src)
    );
}

#[test]
fn l001_ignores_strings_comments_and_lookalikes() {
    let src = "fn f() {\n\
               \x20   let s = \"please don't .unwrap() or panic!(…) here\";\n\
               \x20   // a comment can say x.unwrap() and panic!()\n\
               \x20   /* block comment: .expect(\"ok\") */\n\
               \x20   let unwrap = 1;      // bare ident, not a call\n\
               \x20   let y = s.len();\n\
               \x20   let z = may_panic(); // `panic` without `!` is fine\n\
               }\n";
    assert!(lint_source(HOT, src).is_empty(), "{:?}", lint_source(HOT, src));
}

#[test]
fn l001_allows_unwrap_or_family_and_asserts() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               \x20   assert!(x.is_some(), \"construction-time checks stay\");\n\
               \x20   x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()\n\
               }\n";
    assert!(lint_source(HOT, src).is_empty(), "{:?}", lint_source(HOT, src));
}

// ---------------------------------------------------------------- L002

#[test]
fn l002_flags_unsafe_without_safety_comment() {
    let src = "fn f(p: *const u8) -> u8 {\n\
               \x20   unsafe { *p }\n\
               }\n";
    let v = lint_source(OFFLINE, src);
    assert_eq!(rules_at(&v, 2), vec!["L002"], "{v:?}");
}

#[test]
fn l002_accepts_unsafe_preceded_by_safety_comment() {
    let src = "fn f(p: *const u8) -> u8 {\n\
               \x20   // SAFETY: caller guarantees p is valid for reads.\n\
               \x20   unsafe { *p }\n\
               }\n";
    assert!(lint_source(OFFLINE, src).is_empty(), "{:?}", lint_source(OFFLINE, src));
    // The word `unsafe` inside a string or comment is not an unsafe block.
    let quoted = "fn f() { let s = \"unsafe\"; } // unsafe\n";
    assert!(lint_source(OFFLINE, quoted).is_empty());
}

#[test]
fn l002_pins_the_snapshot_reference_cast_pattern() {
    // The zero-copy snapshot reader's shape: validation above, a multi-line
    // justification, and the `// SAFETY:` sentence as the *final* comment
    // line before `unsafe` — the rule requires the SAFETY token to end
    // within two lines of the unsafe, so detail-first ordering is what
    // keeps the real cast sites (graph/src/snapshot.rs) clean.
    let good = "fn cast(bytes: &[u8]) -> &[u32] {\n\
                \x20   assert_eq!(bytes.len() % 4, 0);\n\
                \x20   assert_eq!(bytes.as_ptr().align_offset(4), 0);\n\
                \x20   // Length divisibility and pointer alignment were just\n\
                \x20   // checked; u32 has no invalid bit patterns.\n\
                \x20   // SAFETY: the checks above make this cast valid.\n\
                \x20   unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast(), bytes.len() / 4) }\n\
                }\n";
    assert!(lint_source(GRAPH, good).is_empty(), "{:?}", lint_source(GRAPH, good));

    // Same cast with the SAFETY sentence buried at the *top* of the comment
    // block: more than two lines from `unsafe`, so it does not count.
    let buried = "fn cast(bytes: &[u8]) -> &[u32] {\n\
                  \x20   // SAFETY: the checks below make this cast valid.\n\
                  \x20   // Length divisibility and pointer alignment are\n\
                  \x20   // checked by the caller, and u32 has no invalid\n\
                  \x20   // bit patterns whatsoever.\n\
                  \x20   unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast(), bytes.len() / 4) }\n\
                  }\n";
    let v = lint_source(GRAPH, buried);
    assert_eq!(rules_at(&v, 6), vec!["L002"], "{v:?}");
}

// ---------------------------------------------------------------- L003

#[test]
fn l003_flags_lock_unwrap_everywhere_even_offline() {
    let src = "fn f(m: &std::sync::Mutex<u32>, rw: &std::sync::RwLock<u32>) {\n\
               \x20   let a = m.lock().unwrap();\n\
               \x20   let b = rw.read().expect(\"poisoned\");\n\
               \x20   let c = rw.write().unwrap();\n\
               }\n";
    let v = lint_source(OFFLINE, src);
    assert_eq!(rules_at(&v, 2), vec!["L003"]);
    assert_eq!(rules_at(&v, 3), vec!["L003"]);
    assert_eq!(rules_at(&v, 4), vec!["L003"]);
}

#[test]
fn l003_accepts_poison_recovery() {
    let src = "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n\
               \x20   *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n\
               }\n";
    assert!(lint_source(OFFLINE, src).is_empty(), "{:?}", lint_source(OFFLINE, src));
    // `.unwrap()` not on a lock guard is L003-clean (L001 owns that case).
    let plain = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(!has(&lint_source(OFFLINE, plain), "L003"));
}

// ---------------------------------------------------------------- L004

#[test]
fn l004_flags_println_in_library_crates() {
    let src = "fn f() {\n\
               \x20   println!(\"debug spam\");\n\
               \x20   eprintln!(\"more spam\");\n\
               }\n";
    let v = lint_source(LIBRARY, src);
    assert_eq!(rules_at(&v, 2), vec!["L004"]);
    assert_eq!(rules_at(&v, 3), vec!["L004"]);
}

#[test]
fn l004_exempts_bench_crate_tests_and_strings() {
    let bench = "fn f() { println!(\"benches report to stdout\"); }\n";
    assert!(lint_source(BENCH, bench).is_empty());
    let quoted = "fn f() -> &'static str { \"println!(no)\" } // println! in comment\n";
    assert!(lint_source(LIBRARY, quoted).is_empty());
    let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"ok\"); }\n}\n";
    assert!(lint_source(LIBRARY, test_src).is_empty());
}

// ---------------------------------------------------------------- L005

#[test]
fn l005_flags_exact_float_comparison_in_kernel_code() {
    let src = "fn f(a: f32, b: f32) -> bool {\n\
               \x20   a == b\n\
               }\n";
    let v = lint_source(KERNEL, src);
    assert_eq!(rules_at(&v, 2), vec!["L005"], "{v:?}");
    let lit = "fn g(x: f64) -> bool { x != 0.5 }\n";
    assert!(has(&lint_source(KERNEL, lit), "L005"));
}

#[test]
fn l005_ignores_integers_and_non_kernel_crates() {
    let ints = "fn f(a: u32, b: u32) -> bool { a == b && a == 0 }\n";
    assert!(lint_source(KERNEL, ints).is_empty(), "{:?}", lint_source(KERNEL, ints));
    // Float comparison outside kernel/model code is someone else's policy.
    let floats = "fn f(a: f32, b: f32) -> bool { a == b }\n";
    assert!(lint_source(OFFLINE, floats).is_empty());
}

// ------------------------------------------------------- escape hatch

#[test]
fn allow_marker_with_reason_suppresses_its_rule() {
    let src = "fn f(a: f32) -> bool {\n\
               \x20   // lint: allow(L005, exact zero is the sparsity sentinel)\n\
               \x20   a == 0.0\n\
               }\n";
    assert!(lint_source(KERNEL, src).is_empty(), "{:?}", lint_source(KERNEL, src));
}

#[test]
fn allow_marker_only_suppresses_the_named_rule() {
    let src = "fn f(x: Option<f32>) -> bool {\n\
               \x20   // lint: allow(L005, wrong rule for this line)\n\
               \x20   x.unwrap() > 0.0\n\
               }\n";
    assert!(has(&lint_source(HOT, src), "L001"), "{:?}", lint_source(HOT, src));
}

#[test]
fn allow_marker_without_reason_is_itself_a_violation() {
    for bad in [
        "// lint: allow(L001)\n",
        "// lint: allow(L001, )\n",
        "// lint: allow(L999, unknown rule)\n",
        "// lint: allow\n",
    ] {
        let src = format!("fn f() {{\n    {bad}}}\n");
        let v = lint_source(OFFLINE, &src);
        assert!(has(&v, "ALLOW"), "marker {bad:?} must be rejected: {v:?}");
    }
}

// ------------------------------------------------------ no-allow zone

#[test]
fn fault_module_is_covered_by_l001_and_the_no_allow_zone() {
    // The fault-injection module lives on the serving hot path: its non-test
    // code may not panic (injected panics come from caller-supplied
    // closures), and the escape hatch is void there like everywhere else
    // under crates/serving.
    const FAULT: &str = "crates/serving/src/fault.rs";
    let src = "fn fire() {\n\
               \x20   panic!(\"faults must be injected, not hardcoded\");\n\
               }\n";
    let v = lint_source(FAULT, src);
    assert_eq!(rules_at(&v, 2), vec!["L001"], "{v:?}");

    let hatched = "fn fire(x: Option<u32>) -> u32 {\n\
                   \x20   // lint: allow(L001, tempting but forbidden)\n\
                   \x20   x.unwrap()\n\
                   }\n";
    let v = lint_source(FAULT, hatched);
    assert!(has(&v, "L001"), "hatch must not suppress in fault.rs: {v:?}");
    assert!(has(&v, "ALLOW"), "hatch in fault.rs must itself be flagged: {v:?}");
}

#[test]
fn backend_modules_are_covered_by_l001_and_the_no_allow_zone() {
    // The SearchBackend trait and the proximity-graph backend are on the
    // serving hot path like every other probe: non-test code may not panic
    // and the escape hatch is void. New files under crates/serving/src are
    // picked up automatically — this fixture pins that for the backend
    // modules added with the multi-backend refactor.
    for path in ["crates/serving/src/backend.rs", "crates/serving/src/proximity.rs"] {
        let src = "fn probe() {\n\
                   \x20   panic!(\"backends degrade, they do not panic\");\n\
                   }\n";
        let v = lint_source(path, src);
        assert_eq!(rules_at(&v, 2), vec!["L001"], "{path}: {v:?}");

        let hatched = "fn probe(x: Option<u32>) -> u32 {\n\
                       \x20   // lint: allow(L001, tempting but forbidden)\n\
                       \x20   x.unwrap()\n\
                       }\n";
        let v = lint_source(path, hatched);
        assert!(has(&v, "L001"), "hatch must not suppress in {path}: {v:?}");
        assert!(has(&v, "ALLOW"), "hatch in {path} must itself be flagged: {v:?}");
    }
}

#[test]
fn doi_cache_and_brownout_modules_are_covered_by_l001_and_the_no_allow_zone() {
    // The DOI scoring path in `crates/serving/src/cache.rs` runs on every
    // cache hit and eviction sweep, and the brownout rung selection runs
    // per batch: non-test code in either may not panic, and the escape
    // hatch is void like everywhere under crates/serving. The clean
    // fixture mirrors the real score's shape — saturating age arithmetic,
    // `max(1)` divisor guards, clamped output — which is exactly what
    // keeps the real thing L001-free without an opt-out.
    const CACHE: &str = "crates/serving/src/cache.rs";
    let clean = "fn doi(now: u64, touched: u64, hits: u64, max_hits: u64) -> f32 {\n\
                 \x20   let age = now.saturating_sub(touched) as f32;\n\
                 \x20   let recency = 1.0 / (1.0 + age);\n\
                 \x20   let freq = (1.0 + hits as f32).ln() / (1.0 + max_hits.max(1) as f32).ln();\n\
                 \x20   (0.5 * recency + 0.5 * freq).clamp(0.0, 1.0)\n\
                 }\n";
    assert!(lint_source(CACHE, clean).is_empty(), "{:?}", lint_source(CACHE, clean));

    for path in [CACHE, "crates/serving/src/brownout.rs"] {
        let panicky = "fn score(now: u64, touched: u64) -> f32 {\n\
                       \x20   panic!(\"scores degrade to zero, they do not panic\");\n\
                       }\n";
        let v = lint_source(path, panicky);
        assert_eq!(rules_at(&v, 2), vec!["L001"], "{path}: {v:?}");

        let hatched = "fn score(now: u64, touched: u64) -> u64 {\n\
                       \x20   // lint: allow(L001, scores must never panic anyway)\n\
                       \x20   u64::try_from(now - touched).unwrap()\n\
                       }\n";
        let v = lint_source(path, hatched);
        assert!(has(&v, "L001"), "hatch must not suppress in {path}: {v:?}");
        assert!(has(&v, "ALLOW"), "hatch in {path} must itself be flagged: {v:?}");
    }
}

#[test]
fn serving_is_a_no_allow_zone() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               \x20   // lint: allow(L001, serving may never opt out)\n\
               \x20   x.unwrap()\n\
               }\n";
    let v = lint_source(HOT, src);
    // The marker both fails to suppress and is flagged itself.
    assert!(has(&v, "L001"), "hatch must not suppress in crates/serving: {v:?}");
    assert!(has(&v, "ALLOW"), "hatch in crates/serving must be flagged: {v:?}");
    // The same source with the same marker is fine one crate over.
    let v = lint_source(GRAPH, src);
    assert!(!has(&v, "L001") && !has(&v, "ALLOW"), "hatch must work outside serving: {v:?}");
}

// ================================================= cross-file analyzer
//
// L006-L009 run over a whole workspace at once, so their fixtures go
// through [`zoomer_lint::lint_workspace`] with multi-file inputs.

use zoomer_lint::lint_workspace;

fn ws(files: &[(&str, &str)]) -> Vec<Violation> {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
    lint_workspace(&owned, None, None)
}

const RECOVER: &str = "unwrap_or_else(std::sync::PoisonError::into_inner)";

// ---------------------------------------------------------------- L006

#[test]
fn l006_flags_same_lock_reentry_across_a_call_chain() {
    let src = format!(
        "fn outer(m: &std::sync::Mutex<u32>) {{\n\
         \x20   let g = m.lock().{RECOVER};\n\
         \x20   inner(m);\n\
         \x20   let _ = g;\n\
         }}\n\
         fn inner(m: &std::sync::Mutex<u32>) {{\n\
         \x20   let _x = m.lock().{RECOVER};\n\
         }}\n"
    );
    let v = ws(&[(GRAPH, &src)]);
    assert_eq!(rules_at(&v, 3), vec!["L006"], "{v:?}");
}

#[test]
fn l006_guard_dropped_before_the_call_is_clean() {
    let src = format!(
        "fn outer(m: &std::sync::Mutex<u32>) {{\n\
         \x20   let g = m.lock().{RECOVER};\n\
         \x20   drop(g);\n\
         \x20   inner(m);\n\
         }}\n\
         fn inner(m: &std::sync::Mutex<u32>) {{\n\
         \x20   let _x = m.lock().{RECOVER};\n\
         }}\n"
    );
    let v = ws(&[(GRAPH, &src)]);
    assert!(!has(&v, "L006"), "dropping the guard must clear the re-entry: {v:?}");
}

#[test]
fn l006_flags_lock_order_cycles_across_files() {
    let ab = format!(
        "fn take_ab(x: &std::sync::Mutex<u32>, y: &std::sync::Mutex<u32>) {{\n\
         \x20   let g = x.lock().{RECOVER};\n\
         \x20   let h = y.lock().{RECOVER};\n\
         \x20   let _ = (g, h);\n\
         }}\n"
    );
    let ba = format!(
        "fn take_ba(x: &std::sync::Mutex<u32>, y: &std::sync::Mutex<u32>) {{\n\
         \x20   let h = y.lock().{RECOVER};\n\
         \x20   let g = x.lock().{RECOVER};\n\
         \x20   let _ = (g, h);\n\
         }}\n"
    );
    let v = ws(&[("crates/graph/src/order_a.rs", &ab), ("crates/graph/src/order_b.rs", &ba)]);
    let cycles: Vec<_> =
        v.iter().filter(|x| x.rule == "L006" && x.message.contains("lock-order cycle")).collect();
    assert_eq!(cycles.len(), 1, "one cycle, reported once: {v:?}");
}

#[test]
fn l006_consistent_lock_order_is_clean() {
    let ab = format!(
        "fn take_ab(x: &std::sync::Mutex<u32>, y: &std::sync::Mutex<u32>) {{\n\
         \x20   let g = x.lock().{RECOVER};\n\
         \x20   let h = y.lock().{RECOVER};\n\
         \x20   let _ = (g, h);\n\
         }}\n"
    );
    let ab2 = format!(
        "fn also_ab(x: &std::sync::Mutex<u32>, y: &std::sync::Mutex<u32>) {{\n\
         \x20   let g = x.lock().{RECOVER};\n\
         \x20   let h = y.lock().{RECOVER};\n\
         \x20   let _ = (g, h);\n\
         }}\n"
    );
    let v = ws(&[("crates/graph/src/order_a.rs", &ab), ("crates/graph/src/order_b.rs", &ab2)]);
    assert!(!has(&v, "L006"), "same order everywhere is deadlock-free: {v:?}");
}

// ---------------------------------------------------------------- L007

#[test]
fn l007_flags_blocking_recv_while_guard_is_live_on_hot_path() {
    let src = format!(
        "fn f(m: &std::sync::Mutex<u32>, rx: &crossbeam::channel::Receiver<u32>) {{\n\
         \x20   let g = m.lock().{RECOVER};\n\
         \x20   let v = rx.recv();\n\
         \x20   let _ = (g, v);\n\
         }}\n"
    );
    let v = ws(&[(HOT, &src)]);
    assert_eq!(rules_at(&v, 3), vec!["L007"], "{v:?}");
}

#[test]
fn l007_flags_caller_supplied_closure_under_a_live_guard() {
    let src = format!(
        "fn f<F: FnOnce() -> u32>(m: &std::sync::Mutex<u32>, work: F) -> u32 {{\n\
         \x20   let _g = m.lock().{RECOVER};\n\
         \x20   work()\n\
         }}\n"
    );
    let v = ws(&[(OFFLINE, &src)]);
    assert_eq!(rules_at(&v, 3), vec!["L007"], "{v:?}");
}

#[test]
fn l007_guard_dropped_before_blocking_is_clean() {
    let src = format!(
        "fn f(m: &std::sync::Mutex<u32>, rx: &crossbeam::channel::Receiver<u32>) {{\n\
         \x20   let g = m.lock().{RECOVER};\n\
         \x20   drop(g);\n\
         \x20   let _v = rx.recv();\n\
         }}\n\
         fn scoped(m: &std::sync::Mutex<u32>, rx: &crossbeam::channel::Receiver<u32>) {{\n\
         \x20   {{\n\
         \x20       let _g = m.lock().{RECOVER};\n\
         \x20   }}\n\
         \x20   let _v = rx.recv();\n\
         }}\n"
    );
    let v = ws(&[(HOT, &src)]);
    assert!(!has(&v, "L007"), "guard scope ends before the recv: {v:?}");
}

#[test]
fn l007_is_scoped_to_serving_and_train() {
    // Identical source: hot in serving/train, advisory-silent in graph.
    let src = format!(
        "fn f(m: &std::sync::Mutex<u32>, rx: &crossbeam::channel::Receiver<u32>) {{\n\
         \x20   let g = m.lock().{RECOVER};\n\
         \x20   let v = rx.recv();\n\
         \x20   let _ = (g, v);\n\
         }}\n"
    );
    assert!(has(&ws(&[(OFFLINE, &src)]), "L007"), "train is in scope");
    assert!(!has(&ws(&[(GRAPH, &src)]), "L007"), "graph is not in L007 scope");
}

// ---------------------------------------------------------------- L008

const MANIFEST: &str = "counter serve.requests\ngauge train.epoch_loss\n";

fn ws_with_manifest(files: &[(&str, &str)], manifest: &str) -> Vec<Violation> {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
    lint_workspace(&owned, Some(manifest), None)
}

#[test]
fn l008_flags_metric_names_missing_from_the_manifest() {
    let src = "fn f(reg: &Registry) {\n\
               \x20   reg.counter(\"serve.requets\").inc();\n\
               }\n";
    let v = ws_with_manifest(&[(OFFLINE, src)], MANIFEST);
    assert!(
        v.iter().any(|x| x.rule == "L008"
            && x.severity == zoomer_lint::Severity::Error
            && x.path == OFFLINE
            && x.line == 2),
        "typo'd name must be caught: {v:?}"
    );
}

#[test]
fn l008_flags_kind_mismatches() {
    let src = "fn f(reg: &Registry) {\n\
               \x20   reg.counter(\"train.epoch_loss\").inc();\n\
               }\n";
    let v = ws_with_manifest(&[(OFFLINE, src)], MANIFEST);
    assert_eq!(rules_at(&v, 2), vec!["L008"], "declared gauge, used as counter: {v:?}");
}

#[test]
fn l008_warns_on_stale_manifest_entries() {
    let src = "fn f(reg: &Registry) {\n\
               \x20   reg.counter(\"serve.requests\").inc();\n\
               }\n";
    let v = ws_with_manifest(&[(OFFLINE, src)], MANIFEST);
    let stale: Vec<_> = v.iter().filter(|x| x.rule == "L008").collect();
    assert_eq!(stale.len(), 1, "{v:?}");
    assert_eq!(stale[0].severity, zoomer_lint::Severity::Warning);
    assert!(stale[0].message.contains("train.epoch_loss"), "{v:?}");
}

#[test]
fn l008_normalizes_format_sites_to_globs() {
    // A format!-built metric name is a *family*: L008 normalizes the
    // interpolation to `*` and requires a matching glob manifest entry.
    let src = "fn f(reg: &Registry, idx: usize) {\n\
               \x20   reg.counter(&format!(\"serve.shard.{idx}.batches\")).inc();\n\
               }\n";
    let v = ws_with_manifest(&[(OFFLINE, src)], MANIFEST);
    assert!(
        v.iter().any(|x| x.rule == "L008"
            && x.severity == zoomer_lint::Severity::Error
            && x.line == 2
            && x.message.contains("serve.shard.*.batches")),
        "uncovered format! site must be caught as its glob: {v:?}"
    );
    let covered = "counter serve.requests\ncounter serve.shard.*.batches\n";
    let v = ws_with_manifest(&[(OFFLINE, src)], covered);
    assert!(
        !v.iter().any(|x| x.rule == "L008" && x.severity == zoomer_lint::Severity::Error),
        "glob manifest entry must cover the format! site: {v:?}"
    );
}

#[test]
fn l008_glob_manifest_entries_cover_literal_sites_and_check_kinds() {
    // The other direction: a glob entry covers literal per-shard names,
    // keeps the entry non-stale, and still enforces the declared kind.
    let src = "fn f(reg: &Registry) {\n\
               \x20   reg.counter(\"serve.shard.0.batches\").inc();\n\
               \x20   reg.counter(\"serve.shard.1.rank_ns\").inc();\n\
               }\n";
    let manifest = "counter serve.shard.*.batches\nhistogram serve.shard.*.rank_ns\n";
    let v = ws_with_manifest(&[(OFFLINE, src)], manifest);
    assert!(rules_at(&v, 2).is_empty(), "literal site under a glob entry is clean: {v:?}");
    assert!(
        v.iter().any(|x| x.rule == "L008"
            && x.line == 3
            && x.severity == zoomer_lint::Severity::Error
            && x.message.contains("histogram")),
        "kind mismatch must survive glob matching: {v:?}"
    );
    assert!(
        !v.iter().any(|x| x.rule == "L008" && x.message.contains("referenced by no metric site")),
        "entries matched through globs are not stale: {v:?}"
    );
}

#[test]
fn l008_skips_dynamic_names_and_test_sites() {
    let src = "fn f(reg: &Registry, name: &str) {\n\
               \x20   reg.counter(name).inc();\n\
               }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t(reg: &Registry) {{ reg.counter(\"test.only\").inc(); }}\n\
               }\n";
    let manifest = "counter serve.requests\n";
    let v = ws_with_manifest(&[(OFFLINE, src)], manifest);
    let errors: Vec<_> = v
        .iter()
        .filter(|x| x.rule == "L008" && x.severity == zoomer_lint::Severity::Error)
        .collect();
    assert!(errors.is_empty(), "dynamic and test-only sites are out of scope: {v:?}");
}

// ---------------------------------------------------------------- L009

#[test]
fn l009_flags_deadline_parameters_that_are_never_threaded() {
    let src = "fn probe(backend: &IvfIndex, q: &Matrix, k: usize, deadline: &Deadline) -> u32 {\n\
               \x20   backend.search_batch(q, k)\n\
               }\n";
    let v = ws(&[(OFFLINE, src)]);
    assert_eq!(rules_at(&v, 1), vec!["L009"], "{v:?}");
    assert!(
        v.iter().any(|x| x.rule == "L009" && x.message.contains("SearchBackend")),
        "message should point at the dropped backend budget: {v:?}"
    );
}

#[test]
fn l009_forwarded_or_consulted_deadlines_are_clean() {
    let forwarded = "fn probe(b: &IvfIndex, q: &Matrix, k: usize, deadline: &Deadline) -> u32 {\n\
                     \x20   b.search_batch_deadline(q, k, deadline)\n\
                     }\n";
    assert!(!has(&ws(&[(OFFLINE, forwarded)]), "L009"), "forwarding threads the budget");

    let consulted = "fn admit(deadline: &Deadline) -> bool {\n\
                     \x20   !deadline.expired()\n\
                     }\n";
    assert!(!has(&ws(&[(OFFLINE, consulted)]), "L009"), "consulting uses the budget");

    let opted_out = "fn exact(q: &Matrix, _deadline: &Deadline) -> u32 {\n\
                     \x20   scan(q)\n\
                     }\n";
    assert!(!has(&ws(&[(OFFLINE, opted_out)]), "L009"), "`_deadline` is the explicit opt-out");
}

// ------------------------------------------------------------ baseline

#[test]
fn baseline_entry_suppresses_a_cross_file_finding() {
    let src = format!(
        "fn f<F: FnOnce() -> u32>(m: &std::sync::Mutex<u32>, work: F) -> u32 {{\n\
         \x20   let _g = m.lock().{RECOVER};\n\
         \x20   work()\n\
         }}\n"
    );
    let files = vec![(OFFLINE.to_string(), src)];
    let baseline = "L007 crates/train/src/fixture.rs fix lands with the shard split\n";
    let v = lint_workspace(&files, None, Some(baseline));
    assert!(!has(&v, "L007"), "baselined finding must be suppressed: {v:?}");
    assert!(!has(&v, "BASELINE"), "a live entry is not stale: {v:?}");
}

#[test]
fn baseline_rejects_serving_paths_and_missing_reasons() {
    let files: Vec<(String, String)> = vec![];
    for bad in [
        "L007 crates/serving/src/server.rs serving is a no-allow zone\n",
        "L007 crates/train/src/ps.rs\n",
        "L999 crates/train/src/ps.rs unknown rule\n",
    ] {
        let v = lint_workspace(&files, None, Some(bad));
        assert!(
            v.iter().any(|x| x.rule == "BASELINE" && x.severity == zoomer_lint::Severity::Error),
            "entry {bad:?} must be rejected: {v:?}"
        );
    }
}

#[test]
fn baseline_warns_on_stale_entries() {
    let files: Vec<(String, String)> = vec![];
    let stale = "L007 crates/train/src/gone.rs the file was deleted\n";
    let v = lint_workspace(&files, None, Some(stale));
    assert!(
        v.iter().any(|x| x.rule == "BASELINE"
            && x.severity == zoomer_lint::Severity::Warning
            && x.message.contains("stale")),
        "{v:?}"
    );
}

// ------------------------------------------- pinned workspace contracts

#[test]
fn partition_routing_path_stays_lock_free() {
    // `crates/graph/src/partition.rs` promises in its header that the
    // routing path is lock-free (pure arithmetic + relaxed atomics), and
    // `ShardedServer` multiplies that surface across N shards. Pin the
    // contract: the real file's extracted facts must contain zero lock
    // acquisitions and no guard-returning functions.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = "crates/graph/src/partition.rs";
    let src = std::fs::read_to_string(root.join(path)).expect("partition.rs must exist");
    let facts = zoomer_lint::facts::extract(&zoomer_lint::engine::FileContext::new(path, &src));
    for f in &facts.fns {
        assert!(
            f.acquires.is_empty(),
            "partition.rs fn `{}` (line {}) acquires a lock — the routing path \
             must stay lock-free (see the module header contract)",
            f.name,
            f.line
        );
        assert!(
            f.returns_guard.is_none(),
            "partition.rs fn `{}` (line {}) hands out a lock guard — the routing \
             path must stay lock-free",
            f.name,
            f.line
        );
    }
    // Belt and braces: the lexed code (comments and strings stripped)
    // must never name a lock type, so a future Mutex can't slip in via a
    // pattern the acquire scanner doesn't model.
    let ctx = zoomer_lint::engine::FileContext::new(path, &src);
    for i in 0..ctx.code.len() {
        let t = ctx.code_text(i);
        assert!(
            t != "Mutex" && t != "RwLock",
            "partition.rs line {} names `{t}` — the module contract forbids locks",
            ctx.code_line(i)
        );
    }
}

// ------------------------------------------------- the tree is clean

#[test]
fn real_workspace_has_zero_unsuppressed_errors() {
    // The acceptance bar for the analyzer: both phases over the actual
    // repo report no error-severity findings (warnings — e.g. a stale
    // manifest entry — would fail CI review but not the gate).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let v = zoomer_lint::lint_tree(&root).expect("workspace must be scannable");
    let errors: Vec<_> = v.iter().filter(|x| x.severity == zoomer_lint::Severity::Error).collect();
    assert!(errors.is_empty(), "remediated tree must be clean: {errors:?}");
}
